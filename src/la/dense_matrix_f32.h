// Row-major dense float32 matrix: the belief-storage type of the f32
// precision mode.
//
// Deliberately minimal — it exists so the hot-path SpMM operands can be
// float without templating DenseMatrix and everything built on it. The
// solvers convert at the precision seam (FromF64 on entry, ToF64 on
// exit) and do all arithmetic that feeds diagnostics in fp64; this type
// only stores and shuttles data.

#ifndef LINBP_LA_DENSE_MATRIX_F32_H_
#define LINBP_LA_DENSE_MATRIX_F32_H_

#include <cstdint>
#include <vector>

#include "src/la/dense_matrix.h"
#include "src/util/check.h"

namespace linbp {

/// Row-major rows x cols matrix of floats.
class DenseMatrixF32 {
 public:
  DenseMatrixF32() = default;
  DenseMatrixF32(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
    LINBP_CHECK(rows >= 0 && cols >= 0);
  }

  /// Narrowing conversion from fp64 (round-to-nearest per element).
  static DenseMatrixF32 FromF64(const DenseMatrix& m) {
    DenseMatrixF32 out(m.rows(), m.cols());
    const std::vector<double>& src = m.data();
    for (std::size_t i = 0; i < src.size(); ++i) {
      out.data_[i] = static_cast<float>(src[i]);
    }
    return out;
  }

  /// Widening conversion to fp64 (exact per element).
  DenseMatrix ToF64() const {
    DenseMatrix out(rows_, cols_);
    std::vector<double>& dst = out.mutable_data();
    for (std::size_t i = 0; i < data_.size(); ++i) {
      dst[i] = static_cast<double>(data_[i]);
    }
    return out;
  }

  /// this (n x k, f32) * other (k x m, fp64) -> n x m f32. The coupling
  /// matrices on the f32 path stay fp64 (they are tiny), so each output
  /// element accumulates in fp64 and rounds once on store. Serial and
  /// deterministic; m and k are paper-sized (<= ~10).
  DenseMatrixF32 MultiplyWide(const DenseMatrix& other) const {
    LINBP_CHECK(cols_ == other.rows());
    const std::int64_t m = other.cols();
    DenseMatrixF32 out(rows_, m);
    for (std::int64_t r = 0; r < rows_; ++r) {
      for (std::int64_t c = 0; c < m; ++c) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < cols_; ++i) {
          acc += static_cast<double>(At(r, i)) * other.At(i, c);
        }
        out.At(r, c) = static_cast<float>(acc);
      }
    }
    return out;
  }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  float& At(std::int64_t r, std::int64_t c) { return data_[r * cols_ + c]; }
  float At(std::int64_t r, std::int64_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& mutable_data() { return data_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace linbp

#endif  // LINBP_LA_DENSE_MATRIX_F32_H_
