// Matrix norms used by the sufficient convergence criteria.
//
// Lemma 9 of the paper bounds the spectral radius by any sub-multiplicative
// norm and recommends the set M = {Frobenius, induced-1, induced-inf},
// taking the minimum. All three are implemented for dense and CSR matrices.

#ifndef LINBP_LA_NORMS_H_
#define LINBP_LA_NORMS_H_

#include "src/la/dense_matrix.h"
#include "src/la/sparse_matrix.h"

namespace linbp {

/// Elementwise 2-norm: sqrt(sum a_ij^2).
double FrobeniusNorm(const DenseMatrix& a);
double FrobeniusNorm(const SparseMatrix& a);

/// Induced 1-norm: maximum absolute column sum.
double Induced1Norm(const DenseMatrix& a);
double Induced1Norm(const SparseMatrix& a);

/// Induced infinity-norm: maximum absolute row sum.
double InducedInfNorm(const DenseMatrix& a);
double InducedInfNorm(const SparseMatrix& a);

/// min over the paper's recommended norm set M = {Frobenius, induced-1,
/// induced-inf}; an upper bound on the spectral radius (Lemma 9).
double MinNorm(const DenseMatrix& a);
double MinNorm(const SparseMatrix& a);

}  // namespace linbp

#endif  // LINBP_LA_NORMS_H_
