#include "src/la/kron_ops.h"

#include <algorithm>

#include "src/util/check.h"

namespace linbp {

DenseOperator::DenseOperator(DenseMatrix m) : m_(std::move(m)) {
  LINBP_CHECK(m_.rows() == m_.cols());
}

void DenseOperator::Apply(const std::vector<double>& x,
                          std::vector<double>* y) const {
  *y = m_.MultiplyVector(x);
}

DenseMatrix LinBpPropagate(const SparseMatrix& adjacency,
                           const std::vector<double>& degrees,
                           const DenseMatrix& hhat, const DenseMatrix& hhat2,
                           const DenseMatrix& beliefs, bool with_echo,
                           const exec::ExecContext& ctx) {
  const std::int64_t n = adjacency.rows();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(adjacency.cols() == n);
  LINBP_CHECK(beliefs.rows() == n && beliefs.cols() == k);
  // A * B, then (A*B) * Hhat.
  DenseMatrix propagated =
      adjacency.MultiplyDense(beliefs, ctx).Multiply(hhat);
  if (!with_echo) return propagated;
  LINBP_CHECK(static_cast<std::int64_t>(degrees.size()) == n);
  // Echo cancellation: subtract D * B * Hhat^2 row by row (D is diagonal).
  SubtractDegreeScaledEcho(degrees, beliefs.Multiply(hhat2), ctx, &propagated);
  return propagated;
}

void SubtractDegreeScaledEcho(const std::vector<double>& degrees,
                              const DenseMatrix& echo,
                              const exec::ExecContext& ctx,
                              DenseMatrix* propagated) {
  const std::int64_t n = propagated->rows();
  const std::int64_t k = propagated->cols();
  LINBP_CHECK(echo.rows() == n && echo.cols() == k);
  LINBP_CHECK(static_cast<std::int64_t>(degrees.size()) == n);
  ctx.ParallelFor(0, n,
                  exec::kDefaultMinWorkPerChunk / std::max<std::int64_t>(1, k),
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    for (std::int64_t s = row_begin; s < row_end; ++s) {
                      const double d = degrees[s];
                      for (std::int64_t c = 0; c < k; ++c) {
                        propagated->At(s, c) -= d * echo.At(s, c);
                      }
                    }
                  });
}

void SubtractDegreeScaledEchoF32(const std::vector<double>& degrees,
                                 const DenseMatrixF32& echo,
                                 const exec::ExecContext& ctx,
                                 DenseMatrixF32* propagated) {
  const std::int64_t n = propagated->rows();
  const std::int64_t k = propagated->cols();
  LINBP_CHECK(echo.rows() == n && echo.cols() == k);
  LINBP_CHECK(static_cast<std::int64_t>(degrees.size()) == n);
  ctx.ParallelFor(0, n,
                  exec::kDefaultMinWorkPerChunk / std::max<std::int64_t>(1, k),
                  [&](std::int64_t row_begin, std::int64_t row_end) {
                    for (std::int64_t s = row_begin; s < row_end; ++s) {
                      const double d = degrees[s];
                      for (std::int64_t c = 0; c < k; ++c) {
                        propagated->At(s, c) = static_cast<float>(
                            static_cast<double>(propagated->At(s, c)) -
                            d * static_cast<double>(echo.At(s, c)));
                      }
                    }
                  });
}

LinBpOperator::LinBpOperator(const SparseMatrix* adjacency,
                             std::vector<double> degrees, DenseMatrix hhat,
                             bool with_echo, exec::ExecContext ctx)
    : adjacency_(adjacency),
      degrees_(std::move(degrees)),
      hhat_(std::move(hhat)),
      hhat2_(hhat_.Multiply(hhat_)),
      with_echo_(with_echo),
      ctx_(std::move(ctx)) {
  LINBP_CHECK(adjacency_ != nullptr);
  LINBP_CHECK(adjacency_->rows() == adjacency_->cols());
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(static_cast<std::int64_t>(degrees_.size()) ==
              adjacency_->rows());
}

std::int64_t LinBpOperator::dim() const {
  return adjacency_->rows() * hhat_.rows();
}

void LinBpOperator::Apply(const std::vector<double>& x,
                          std::vector<double>* y) const {
  const std::int64_t n = adjacency_->rows();
  const std::int64_t k = hhat_.rows();
  const DenseMatrix b = UnvectorizeBeliefs(x, n, k);
  const DenseMatrix out = LinBpPropagate(*adjacency_, degrees_, hhat_, hhat2_,
                                         b, with_echo_, ctx_);
  *y = VectorizeBeliefs(out);
}

DenseMatrix UnvectorizeBeliefs(const std::vector<double>& v, std::int64_t n,
                               std::int64_t k) {
  return DenseMatrix::FromVectorized(v, n, k);
}

std::vector<double> VectorizeBeliefs(const DenseMatrix& b) {
  return b.Vectorize();
}

}  // namespace linbp
