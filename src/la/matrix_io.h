// Plain-text I/O for dense matrices (coupling matrices, belief dumps).
//
// Format: one row per line, whitespace-separated values; '#' starts a
// comment. All rows must have the same number of columns.

#ifndef LINBP_LA_MATRIX_IO_H_
#define LINBP_LA_MATRIX_IO_H_

#include <optional>
#include <string>

#include "src/la/dense_matrix.h"

namespace linbp {

/// Writes the matrix with full precision. Returns false on I/O failure.
bool WriteDenseMatrix(const DenseMatrix& matrix, const std::string& path);

/// Reads a matrix; returns nullopt and fills *error on failure.
std::optional<DenseMatrix> ReadDenseMatrix(const std::string& path,
                                           std::string* error);

}  // namespace linbp

#endif  // LINBP_LA_MATRIX_IO_H_
