#include "src/la/norms.h"

#include <algorithm>
#include <cmath>

namespace linbp {

double FrobeniusNorm(const DenseMatrix& a) {
  double sum = 0.0;
  for (const double v : a.data()) sum += v * v;
  return std::sqrt(sum);
}

double FrobeniusNorm(const SparseMatrix& a) {
  double sum = 0.0;
  for (const double v : a.values()) sum += v * v;
  return std::sqrt(sum);
}

double Induced1Norm(const DenseMatrix& a) {
  double max_sum = 0.0;
  for (std::int64_t c = 0; c < a.cols(); ++c) {
    double sum = 0.0;
    for (std::int64_t r = 0; r < a.rows(); ++r) sum += std::abs(a.At(r, c));
    max_sum = std::max(max_sum, sum);
  }
  return max_sum;
}

double Induced1Norm(const SparseMatrix& a) {
  const std::vector<double> sums = a.AbsColSums();
  return sums.empty() ? 0.0 : *std::max_element(sums.begin(), sums.end());
}

double InducedInfNorm(const DenseMatrix& a) {
  double max_sum = 0.0;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < a.cols(); ++c) sum += std::abs(a.At(r, c));
    max_sum = std::max(max_sum, sum);
  }
  return max_sum;
}

double InducedInfNorm(const SparseMatrix& a) {
  const std::vector<double> sums = a.AbsRowSums();
  return sums.empty() ? 0.0 : *std::max_element(sums.begin(), sums.end());
}

double MinNorm(const DenseMatrix& a) {
  return std::min({FrobeniusNorm(a), Induced1Norm(a), InducedInfNorm(a)});
}

double MinNorm(const SparseMatrix& a) {
  return std::min({FrobeniusNorm(a), Induced1Norm(a), InducedInfNorm(a)});
}

}  // namespace linbp
