// Estimating the coupling matrix H from partially labeled data.
//
// The paper assumes H is given by domain experts and names learning it from
// (partially) labeled data as future work (footnote 1). This module
// implements the natural estimator: count class co-occurrences across edges
// whose endpoints are both labeled, smooth, and project onto the symmetric
// doubly stochastic matrices with Sinkhorn-Knopp balancing. On graphs
// actually generated from a coupling matrix the estimate recovers it as the
// labeled fraction grows (see coupling_estimation_test.cc).

#ifndef LINBP_CORE_COUPLING_ESTIMATION_H_
#define LINBP_CORE_COUPLING_ESTIMATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/coupling.h"
#include "src/graph/graph.h"

namespace linbp {

/// Options for EstimateCoupling.
struct CouplingEstimationOptions {
  /// Additive (Laplace) smoothing per class pair; keeps zero-count pairs
  /// from collapsing the doubly stochastic projection.
  double smoothing = 1.0;
  /// Sinkhorn-Knopp iterations / tolerance for the balancing step.
  int max_sinkhorn_iterations = 500;
  double sinkhorn_tolerance = 1e-12;
};

/// Result of a coupling estimation.
struct CouplingEstimate {
  CouplingMatrix coupling;
  /// Number of edges with both endpoints labeled (the sample size).
  std::int64_t observed_edges = 0;
  /// Raw (smoothed, weight-summed) co-occurrence counts, k x k.
  DenseMatrix counts;
};

/// Estimates a symmetric doubly stochastic coupling matrix from the edges
/// of `graph` whose two endpoints both appear in `labels` (label < 0 means
/// unlabeled). Edge weights act as fractional counts. Returns nullopt when
/// no edge has two labeled endpoints.
std::optional<CouplingEstimate> EstimateCoupling(
    const Graph& graph, const std::vector<int>& labels, std::int64_t k,
    const CouplingEstimationOptions& options = {});

/// Sinkhorn-Knopp: scales a symmetric positive matrix to be (symmetric)
/// doubly stochastic. Exposed for testing.
DenseMatrix SinkhornKnopp(const DenseMatrix& positive, int max_iterations,
                          double tolerance);

}  // namespace linbp

#endif  // LINBP_CORE_COUPLING_ESTIMATION_H_
