// Coupling (heterophily) matrices H and their residuals Hhat.
//
// Problem 1 of the paper requires a symmetric, doubly stochastic k x k
// coupling matrix H where H(j, i) is the relative influence of class j of a
// node on class i of its neighbor. LinBP and SBP work with the residual
// Hhat = H - 1/k, usually factored as Hhat = eps_H * Hhat_o into a fixed
// unscaled matrix and a scaling parameter (Sect. 6.2).

#ifndef LINBP_CORE_COUPLING_H_
#define LINBP_CORE_COUPLING_H_

#include "src/la/dense_matrix.h"

namespace linbp {

/// Validated coupling matrix. Construct via FromStochastic (a proper doubly
/// stochastic matrix) or FromResidual (an unscaled residual whose rows and
/// columns sum to zero, like the paper's Fig. 6b).
class CouplingMatrix {
 public:
  /// Builds from a symmetric doubly stochastic matrix with non-negative
  /// entries; aborts if the input violates those properties beyond `tol`.
  static CouplingMatrix FromStochastic(const DenseMatrix& h,
                                       double tol = 1e-9);

  /// Builds from a symmetric residual matrix whose rows/columns sum to 0.
  static CouplingMatrix FromResidual(const DenseMatrix& hhat,
                                     double tol = 1e-9);

  /// Number of classes k.
  std::int64_t k() const { return residual_.rows(); }

  /// The unscaled residual Hhat_o.
  const DenseMatrix& residual() const { return residual_; }

  /// The scaled residual Hhat = eps_h * Hhat_o.
  DenseMatrix ScaledResidual(double eps_h) const;

  /// The stochastic matrix 1/k + eps_h * Hhat_o (input to standard BP).
  /// With eps_h small enough all entries are non-negative.
  DenseMatrix ScaledStochastic(double eps_h) const;

  /// Largest eps_h for which ScaledStochastic has non-negative entries
  /// (infinity if the residual is zero).
  double MaxStochasticScale() const;

  /// True if some H(i,i) dominates its column (homophily footnote 6).
  bool IsHomophily() const;

 private:
  explicit CouplingMatrix(DenseMatrix residual)
      : residual_(std::move(residual)) {}
  DenseMatrix residual_;
};

/// Fig. 1a: 2-class homophily ([[0.8, 0.2], [0.2, 0.8]]).
CouplingMatrix HomophilyCoupling2();

/// Fig. 1b: 2-class heterophily ([[0.3, 0.7], [0.7, 0.3]]).
CouplingMatrix HeterophilyCoupling2();

/// Fig. 1c: the 3-class online-auction matrix (Honest/Accomplice/Fraudster).
CouplingMatrix AuctionCoupling();

/// Fig. 6b: the unscaled residual used in the synthetic experiments,
/// [[10, -4, -6], [-4, 7, -3], [-6, -3, 9]], kept at the paper's raw scale
/// so the eps_H thresholds of Fig. 7f/g reproduce verbatim.
CouplingMatrix KroneckerExperimentCoupling();

/// Fig. 11a: 4-class homophily residual [[6,-2,-2,-2], [-2,6,-2,-2], ...],
/// kept at the paper's raw scale.
CouplingMatrix DblpCoupling();

/// Generic k-class homophily: diagonal (k-1)/k * strength advantage,
/// expressed as the residual of the stochastic matrix with
/// H(i,i) = 1/k + (k-1)*s and H(i,j) = 1/k - s (s = strength).
CouplingMatrix UniformHomophilyCoupling(std::int64_t k, double strength);

}  // namespace linbp

#endif  // LINBP_CORE_COUPLING_H_
