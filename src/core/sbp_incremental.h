// Incremental maintenance of SBP results (Sect. 6.3 and Appendix C).
//
// SbpState keeps the dynamic graph, geodesic numbers, and beliefs, and
// supports the batch updates of the paper plus their decremental duals:
//   * AddExplicitBeliefs — Algorithm 3 (new labeled nodes),
//   * AddEdges           — Algorithm 4 (new edges),
//   * RemoveEdges        — edge deletions (geodesics recomputed, newly
//                          unreachable nodes zeroed),
//   * UpdateEdgeWeights  — weight changes (geodesics unchanged).
// All touch only the affected region of the graph. The updates implement
// the corrected level-ordered worklist described in DESIGN.md: the paper's
// literal Datalog can re-target nodes with equal geodesic numbers; we
// instead (1) maintain geodesic numbers, (2) seed the dirty set from
// geodesic changes plus level-crossing edges that appeared, vanished, or
// changed weight, and (3) recompute beliefs level by level. Results are
// always identical to a from-scratch SBP run (property-tested).
//
// Every update validates its whole batch up front and returns -1 with an
// error description on bad input (out-of-range node, missing/duplicate
// edge, non-finite value), leaving the state untouched — states fed from
// an update stream survive hostile input without aborting.

#ifndef LINBP_CORE_SBP_INCREMENTAL_H_
#define LINBP_CORE_SBP_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/sbp.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Mutable SBP computation state supporting incremental updates.
class SbpState {
 public:
  /// Empty state over `num_nodes` isolated nodes with coupling `hhat`.
  /// Belief recomputation of large dirty levels fans out on `exec`
  /// (per-node ownership: results are bit-identical across thread counts).
  SbpState(std::int64_t num_nodes, DenseMatrix hhat,
           exec::ExecContext exec = exec::ExecContext::Default());

  /// Bootstraps from a full graph and initial explicit beliefs
  /// (Algorithm 2: the initial from-scratch assignment).
  static SbpState FromGraph(const Graph& graph, DenseMatrix hhat,
                            const DenseMatrix& explicit_residuals,
                            const std::vector<std::int64_t>& explicit_nodes,
                            exec::ExecContext exec =
                                exec::ExecContext::Default());

  /// Algorithm 3: adds (or overwrites) explicit beliefs for `nodes`; row i
  /// of `residuals` is the belief of nodes[i]. Updates all affected nodes
  /// and returns the number recomputed. An invalid batch — an
  /// out-of-range node id, a row/class count mismatch, or a non-finite
  /// residual — returns -1 with *error filled (when non-null) and leaves
  /// the state untouched; it never aborts.
  int AddExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                         const DenseMatrix& residuals,
                         std::string* error = nullptr);

  /// Algorithm 4: adds undirected edges and updates all affected nodes;
  /// returns the number recomputed. An invalid batch — an out-of-range
  /// endpoint, self-loop, non-finite weight, duplicate within the batch,
  /// or an edge already present — returns -1 with *error filled (when
  /// non-null) and leaves the state untouched; it never aborts.
  int AddEdges(const std::vector<Edge>& edges, std::string* error = nullptr);

  /// Removes undirected edges (weights ignored — an edge is named by its
  /// endpoints) and updates all affected nodes; returns the number
  /// recomputed. Geodesic numbers are recomputed and nodes that become
  /// unreachable from every explicit node have their beliefs zeroed, the
  /// from-scratch convention. An invalid batch — an out-of-range
  /// endpoint, a missing edge, or a duplicate pair within the batch —
  /// returns -1 with *error filled (when non-null) and leaves the state
  /// untouched.
  int RemoveEdges(const std::vector<Edge>& edges,
                  std::string* error = nullptr);

  /// Overwrites the weights of existing undirected edges and updates all
  /// affected nodes; returns the number recomputed. Geodesic numbers are
  /// unchanged (SBP shortest paths are hop counts). An invalid batch —
  /// an out-of-range endpoint, a missing edge, a non-finite weight, or a
  /// duplicate pair within the batch — returns -1 with *error filled
  /// (when non-null) and leaves the state untouched.
  int UpdateEdgeWeights(const std::vector<Edge>& edges,
                        std::string* error = nullptr);

  /// Current residual beliefs (n x k).
  const DenseMatrix& beliefs() const { return beliefs_; }

  /// Current geodesic numbers (kUnreachable for unlabeled components).
  const std::vector<std::int64_t>& geodesic() const { return geodesic_; }

  /// Nodes currently carrying explicit beliefs (unsorted).
  const std::vector<std::int64_t>& explicit_nodes() const {
    return explicit_nodes_;
  }

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(adjacency_.size());
  }
  std::int64_t k() const { return hhat_.rows(); }

  /// Statistics: nodes whose beliefs were recomputed by the last update.
  std::int64_t last_update_recomputed_nodes() const {
    return last_update_recomputed_nodes_;
  }

 private:
  struct Neighbor {
    std::int64_t node;
    double weight;
  };

  // Validates an edge batch against the adjacency lists: endpoints in
  // range, no self-loops, no duplicate undirected pair in the batch;
  // `require_present` demands the edge exists (removal/reweight) while
  // its negation demands it does not (addition); `check_weights` demands
  // finite weights. Returns empty for a valid batch, else the first
  // problem.
  std::string ValidateEdgeBatch(const std::vector<Edge>& edges,
                                bool require_present,
                                bool check_weights) const;

  // Recomputes beliefs of `t` from its current parents (geodesic g-1).
  void RecomputeBeliefs(std::int64_t t);

  // Propagates belief recomputation level by level starting from `dirty`
  // (nodes whose beliefs must be recomputed; explicit g=0 nodes excluded).
  void PropagateDirty(std::vector<std::int64_t> dirty);

  std::vector<std::vector<Neighbor>> adjacency_;
  DenseMatrix hhat_;
  DenseMatrix beliefs_;
  std::vector<std::int64_t> geodesic_;
  std::vector<std::int64_t> explicit_nodes_;
  std::vector<bool> is_explicit_;
  std::int64_t last_update_recomputed_nodes_ = 0;
  exec::ExecContext exec_;
};

}  // namespace linbp

#endif  // LINBP_CORE_SBP_INCREMENTAL_H_
