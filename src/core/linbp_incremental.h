// Warm-started incremental LinBP.
//
// Sect. 8 of the paper notes that incrementally maintaining LinBP results
// (general matrix computations) is future work. The linear fixed point
// B = E + M(B) gives a simple effective scheme: after a small change to E
// or to the graph, re-run the Jacobi iteration *warm-started* from the
// previous solution. Because the fixed point moves continuously with the
// inputs, a localized change converges in a handful of sweeps instead of a
// full cold start (measured in bench/ablation_incremental_linbp.cc and
// property-tested against cold solves).

#ifndef LINBP_CORE_LINBP_INCREMENTAL_H_
#define LINBP_CORE_LINBP_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/linbp.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Mutable LinBP computation state supporting warm-started updates.
class LinBpState {
 public:
  /// Solves the initial system (cold start).
  LinBpState(Graph graph, DenseMatrix hhat, DenseMatrix explicit_residuals,
             LinBpOptions options = {});

  /// Overwrites the explicit beliefs of `nodes` (row i of `residuals` is
  /// nodes[i]) and re-solves warm-started. Returns the sweeps used.
  int UpdateExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                            const DenseMatrix& residuals);

  /// Adds undirected edges and re-solves warm-started. Returns the sweeps
  /// used. (The graph is rebuilt; the belief warm start is what saves the
  /// iterations.) An invalid batch — an out-of-range endpoint, self-loop,
  /// non-finite weight, duplicate within the batch, or an edge already in
  /// the graph — returns -1 with *error filled (when non-null) and leaves
  /// the state untouched; it never aborts.
  int AddEdges(const std::vector<Edge>& edges, std::string* error = nullptr);

  /// Current solution (residual beliefs).
  const DenseMatrix& beliefs() const { return beliefs_; }

  const Graph& graph() const { return graph_; }
  bool converged() const { return converged_; }

  /// Sweeps used by the initial cold solve, for comparison.
  int cold_start_iterations() const { return cold_start_iterations_; }

 private:
  // Runs the update equation from the current beliefs_ until convergence.
  int Solve();

  Graph graph_;
  DenseMatrix hhat_;
  DenseMatrix explicit_residuals_;
  LinBpOptions options_;
  DenseMatrix beliefs_;
  bool converged_ = false;
  int cold_start_iterations_ = 0;
};

}  // namespace linbp

#endif  // LINBP_CORE_LINBP_INCREMENTAL_H_
