// Warm-started incremental LinBP.
//
// Sect. 8 of the paper notes that incrementally maintaining LinBP results
// (general matrix computations) is future work. The linear fixed point
// B = E + M(B) gives a simple effective scheme: after a small change to E
// or to the graph, re-run the Jacobi iteration *warm-started* from the
// previous solution. Because the fixed point moves continuously with the
// inputs, a localized change converges in a handful of sweeps instead of a
// full cold start (measured in bench/ablation_incremental_linbp.cc and
// property-tested against cold solves).
//
// The state solves through a PropagationBackend (src/engine), so warm
// restarts also run out-of-core over a ShardStreamBackend. A streamed
// backend that fails mid-solve (shard corruption appearing between
// sweeps) rolls the state back to the last good solution: updates are
// all-or-nothing.

#ifndef LINBP_CORE_LINBP_INCREMENTAL_H_
#define LINBP_CORE_LINBP_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/linbp.h"
#include "src/engine/propagation_backend.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Mutable LinBP computation state supporting warm-started updates.
class LinBpState {
 public:
  /// Solves the initial system (cold start) on an owned in-memory graph.
  LinBpState(Graph graph, DenseMatrix hhat, DenseMatrix explicit_residuals,
             LinBpOptions options = {});

  /// Solves the initial system over an arbitrary backend (e.g. an
  /// engine::ShardStreamBackend for out-of-core warm restarts). A cold
  /// solve that fails (streamed corruption) leaves beliefs() at the last
  /// completed sweep with converged() false and last_error() set.
  /// Edge mutations are unsupported on this path (no owned graph).
  LinBpState(std::shared_ptr<const engine::PropagationBackend> backend,
             DenseMatrix hhat, DenseMatrix explicit_residuals,
             LinBpOptions options = {});

  /// Solves the initial system on a shared graph viewed through an
  /// externally built backend (tests inject failure-capable backends
  /// here). The backend must read `graph`'s adjacency: edge mutations
  /// rebuild *graph in place and assume the backend sees the rebuild.
  LinBpState(std::shared_ptr<Graph> graph,
             std::shared_ptr<const engine::PropagationBackend> backend,
             DenseMatrix hhat, DenseMatrix explicit_residuals,
             LinBpOptions options = {});

  /// Overwrites the explicit beliefs of `nodes` (row i of `residuals` is
  /// nodes[i]) and re-solves warm-started. Returns the sweeps used. An
  /// invalid batch — an out-of-range node id, a residual row count that
  /// does not match `nodes`, a class count that does not match the
  /// coupling, or a non-finite residual — returns -1 with *error filled
  /// (when non-null) and leaves the state untouched; it never aborts.
  /// Also returns -1 when a streamed backend failed mid-solve — the
  /// state (beliefs AND explicit residuals) is then rolled back, with
  /// the failure in last_error().
  int UpdateExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                            const DenseMatrix& residuals,
                            std::string* error = nullptr);

  /// Movable but not copyable: the graph lives behind a shared pointer
  /// (so the backend's reference survives moves), and a copy would
  /// alias it — AddEdges on the copy would mutate the original's graph
  /// under its cached solution.
  LinBpState(LinBpState&&) = default;
  LinBpState& operator=(LinBpState&&) = default;
  LinBpState(const LinBpState&) = delete;
  LinBpState& operator=(const LinBpState&) = delete;

  /// Adds undirected edges and re-solves warm-started. Returns the sweeps
  /// used. (The graph is rebuilt; the belief warm start is what saves the
  /// iterations.) An invalid batch — an out-of-range endpoint, self-loop,
  /// non-finite weight, duplicate within the batch, or an edge already in
  /// the graph — returns -1 with *error filled (when non-null) and leaves
  /// the state untouched; it never aborts. Also returns -1 on a state
  /// without an owned graph (streamed backends cannot mutate edges) and
  /// on a mid-solve stream failure (graph AND beliefs rolled back).
  int AddEdges(const std::vector<Edge>& edges, std::string* error = nullptr);

  /// Removes undirected edges (weights ignored — an edge is named by its
  /// endpoints) and re-solves warm-started. Same all-or-nothing contract
  /// as AddEdges: the batch is validated up front (endpoints in range,
  /// every edge currently present, no duplicate pair in the batch), an
  /// invalid batch returns -1 + *error with the state untouched, and a
  /// mid-solve backend failure rolls graph and beliefs back.
  int RemoveEdges(const std::vector<Edge>& edges,
                  std::string* error = nullptr);

  /// Overwrites the weights of existing undirected edges and re-solves
  /// warm-started. Same all-or-nothing contract as AddEdges: validated up
  /// front (endpoints in range, every edge currently present, finite new
  /// weights, no duplicate pair in the batch), -1 + *error on an invalid
  /// batch with the state untouched, rollback on a mid-solve failure.
  int UpdateEdgeWeights(const std::vector<Edge>& edges,
                        std::string* error = nullptr);

  /// Current solution (residual beliefs).
  const DenseMatrix& beliefs() const { return beliefs_; }

  /// The owned graph. Only valid for states constructed from a Graph.
  const Graph& graph() const;

  /// True when the state owns a mutable in-memory graph (AddEdges works).
  bool has_graph() const { return graph_ != nullptr; }

  const engine::PropagationBackend& backend() const { return *backend_; }
  bool converged() const { return converged_; }

  /// Failure message of the last solve (empty on success).
  const std::string& last_error() const { return last_error_; }

  /// Convergence diagnostics of the most recent (re-)solve: fitted
  /// rho-hat, predicted sweeps to tolerance, and — when
  /// options.estimate_spectral_radius was set — the rho(M) power-
  /// iteration estimate (computed once per graph shape and reused across
  /// warm re-solves).
  const ConvergenceDiagnostics& diagnostics() const { return diagnostics_; }

  /// Sweeps used by the initial cold solve, for comparison.
  int cold_start_iterations() const { return cold_start_iterations_; }

 private:
  // Runs the update equation from the current beliefs_ until convergence.
  // Returns the sweeps used, or -1 on a backend failure (beliefs_ then
  // hold the last completed sweep; last_error_ describes the failure).
  int Solve();

  // Shared tail of the edge mutations: rebuilds *graph_ in place from
  // `new_edges`, re-solves warm-started, and on a backend failure rolls
  // graph and beliefs back to the pre-call state. Assumes the batch has
  // already been validated.
  int RebuildGraphAndResolve(std::vector<Edge> new_edges, std::string* error);

  // Common guard for the edge mutations: fills *error and returns false
  // when the state has no owned graph (backend-only construction).
  bool RequireMutableGraph(std::string* error) const;

  // Owned graph for the in-memory construction path (null for
  // backend-constructed states). Held behind a stable pointer so the
  // backend's reference survives moves of the state.
  std::shared_ptr<Graph> graph_;
  std::shared_ptr<const engine::PropagationBackend> backend_;
  DenseMatrix hhat_;
  DenseMatrix explicit_residuals_;
  LinBpOptions options_;
  DenseMatrix beliefs_;
  bool converged_ = false;
  std::string last_error_;
  int cold_start_iterations_ = 0;
  // Cached rho(M) estimate (-1 = not computed). Invalidated by edge
  // mutations (they change the operator), reused by warm re-solves so
  // power iteration runs once, not per update.
  double spectral_estimate_ = -1.0;
  ConvergenceDiagnostics diagnostics_;
};

}  // namespace linbp

#endif  // LINBP_CORE_LINBP_INCREMENTAL_H_
