#include "src/core/coupling.h"

#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace linbp {

CouplingMatrix CouplingMatrix::FromStochastic(const DenseMatrix& h,
                                              double tol) {
  LINBP_CHECK(h.rows() == h.cols() && h.rows() >= 2);
  LINBP_CHECK_MSG(h.IsSymmetric(tol), "coupling matrix must be symmetric");
  const std::int64_t k = h.rows();
  for (std::int64_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      LINBP_CHECK_MSG(h.At(i, j) >= -tol, "entries must be non-negative");
      row_sum += h.At(i, j);
    }
    LINBP_CHECK_MSG(std::abs(row_sum - 1.0) <= tol,
                    "rows must sum to 1 (doubly stochastic)");
  }
  return CouplingMatrix(h.AddScalar(-1.0 / static_cast<double>(k)));
}

CouplingMatrix CouplingMatrix::FromResidual(const DenseMatrix& hhat,
                                            double tol) {
  LINBP_CHECK(hhat.rows() == hhat.cols() && hhat.rows() >= 2);
  LINBP_CHECK_MSG(hhat.IsSymmetric(tol), "residual must be symmetric");
  const std::int64_t k = hhat.rows();
  for (std::int64_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < k; ++j) row_sum += hhat.At(i, j);
    LINBP_CHECK_MSG(std::abs(row_sum) <= tol, "residual rows must sum to 0");
  }
  return CouplingMatrix(hhat);
}

DenseMatrix CouplingMatrix::ScaledResidual(double eps_h) const {
  return residual_.Scale(eps_h);
}

DenseMatrix CouplingMatrix::ScaledStochastic(double eps_h) const {
  return residual_.Scale(eps_h).AddScalar(1.0 / static_cast<double>(k()));
}

double CouplingMatrix::MaxStochasticScale() const {
  double most_negative = 0.0;
  for (const double v : residual_.data()) {
    most_negative = std::min(most_negative, v);
  }
  if (most_negative == 0.0) return std::numeric_limits<double>::infinity();
  return (1.0 / static_cast<double>(k())) / -most_negative;
}

bool CouplingMatrix::IsHomophily() const {
  for (std::int64_t i = 0; i < k(); ++i) {
    for (std::int64_t j = 0; j < k(); ++j) {
      if (j != i && residual_.At(i, i) <= residual_.At(j, i)) return false;
    }
  }
  return true;
}

CouplingMatrix HomophilyCoupling2() {
  return CouplingMatrix::FromStochastic(DenseMatrix{{0.8, 0.2}, {0.2, 0.8}});
}

CouplingMatrix HeterophilyCoupling2() {
  return CouplingMatrix::FromStochastic(DenseMatrix{{0.3, 0.7}, {0.7, 0.3}});
}

CouplingMatrix AuctionCoupling() {
  return CouplingMatrix::FromStochastic(
      DenseMatrix{{0.6, 0.3, 0.1}, {0.3, 0.0, 0.7}, {0.1, 0.7, 0.2}});
}

CouplingMatrix KroneckerExperimentCoupling() {
  return CouplingMatrix::FromResidual(
      DenseMatrix{{10, -4, -6}, {-4, 7, -3}, {-6, -3, 9}});
}

CouplingMatrix DblpCoupling() {
  return CouplingMatrix::FromResidual(DenseMatrix{{6, -2, -2, -2},
                                                  {-2, 6, -2, -2},
                                                  {-2, -2, 6, -2},
                                                  {-2, -2, -2, 6}});
}

CouplingMatrix UniformHomophilyCoupling(std::int64_t k, double strength) {
  LINBP_CHECK(k >= 2);
  LINBP_CHECK(strength > 0.0 &&
              strength <= 1.0 / static_cast<double>(k));
  DenseMatrix hhat(k, k);
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      hhat.At(i, j) =
          i == j ? strength * static_cast<double>(k - 1) : -strength;
    }
  }
  return CouplingMatrix::FromResidual(hhat);
}

}  // namespace linbp
