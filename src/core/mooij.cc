#include "src/core/mooij.h"

#include <cmath>

#include "src/core/convergence.h"
#include "src/la/kron_ops.h"
#include "src/la/solvers.h"
#include "src/util/check.h"

namespace linbp {
namespace {

// Implicit operator for the directed edge matrix: x is indexed by CSR slot
// e = (u -> v); y[e] = sum over in-edges (w -> u), w != v, of x[(w -> u)].
// In-edges of u are the reverses of u's out-slots, so
//   y[(u -> v)] = (sum over out-slots f of u of x[reverse[f]])
//               - x[reverse of (v -> u)'s ... ] = in_sum(u) - x[(v -> u)].
class EdgeMatrixOperator final : public LinearOperator {
 public:
  explicit EdgeMatrixOperator(const Graph* graph)
      : graph_(graph), reverse_(ReverseEdgeIndex(graph->adjacency())) {}

  std::int64_t dim() const override {
    return graph_->adjacency().NumNonZeros();
  }

  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    const SparseMatrix& a = graph_->adjacency();
    const auto& row_ptr = a.row_ptr();
    const std::int64_t n = a.rows();
    in_sum_.assign(n, 0.0);
    for (std::int64_t u = 0; u < n; ++u) {
      for (std::int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
        in_sum_[u] += x[reverse_[e]];
      }
    }
    y->resize(x.size());
    for (std::int64_t u = 0; u < n; ++u) {
      for (std::int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
        // e is the directed edge u -> v; reverse_[e] is v -> u.
        (*y)[e] = in_sum_[u] - x[reverse_[e]];
      }
    }
  }

 private:
  const Graph* graph_;
  std::vector<std::int64_t> reverse_;
  mutable std::vector<double> in_sum_;
};

}  // namespace

double MooijCouplingConstant(const DenseMatrix& h) {
  const std::int64_t k = h.rows();
  LINBP_CHECK(h.cols() == k && k >= 2);
  double max_abs_log = 0.0;
  for (std::int64_t c1 = 0; c1 < k; ++c1) {
    for (std::int64_t c2 = 0; c2 < k; ++c2) {
      if (c1 == c2) continue;
      for (std::int64_t d1 = 0; d1 < k; ++d1) {
        for (std::int64_t d2 = 0; d2 < k; ++d2) {
          if (d1 == d2) continue;
          const double numerator = h.At(c1, d1) * h.At(c2, d2);
          const double denominator = h.At(c1, d2) * h.At(c2, d1);
          if (denominator <= 0.0 || numerator <= 0.0) {
            return 1.0;  // tanh(inf): the bound degenerates
          }
          max_abs_log =
              std::max(max_abs_log, std::abs(std::log(numerator /
                                                      denominator)));
        }
      }
    }
  }
  return std::tanh(0.25 * max_abs_log);
}

double EdgeMatrixSpectralRadius(const Graph& graph, int max_iterations,
                                double tolerance) {
  const EdgeMatrixOperator op(&graph);
  return PowerIteration(op, max_iterations, tolerance).spectral_radius;
}

BoundComparison CompareConvergenceBounds(const Graph& graph,
                                         const DenseMatrix& hhat) {
  BoundComparison comparison;
  const double k = static_cast<double>(hhat.rows());
  const DenseMatrix h = hhat.AddScalar(1.0 / k);
  comparison.coupling_constant = MooijCouplingConstant(h);
  comparison.edge_matrix_radius = EdgeMatrixSpectralRadius(graph);
  comparison.adjacency_radius = AdjacencySpectralRadius(graph);
  comparison.mooij_value =
      comparison.coupling_constant * comparison.edge_matrix_radius;
  comparison.linbp_star_value =
      CouplingSpectralRadius(hhat) * comparison.adjacency_radius;
  return comparison;
}

}  // namespace linbp
