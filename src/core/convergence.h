// Convergence criteria for LinBP and LinBP* (Sect. 5.1 of the paper).
//
// Exact (necessary and sufficient, Lemma 8):
//   LinBP  converges <=> rho(Hhat (x) A - Hhat^2 (x) D) < 1
//   LinBP* converges <=> rho(Hhat) < 1 / rho(A)
// Sufficient (Lemma 9, with ||.||_M the min over Frobenius / induced-1 /
// induced-inf):
//   LinBP* : ||Hhat|| < 1 / ||A||
//   LinBP  : ||Hhat|| < (sqrt(||A||^2 + 4||D||) - ||A||) / (2 ||D||)
// Plus the simpler Lemma 23 bound ||Hhat|| < 1 / (2||A||) for induced norms.
//
// Spectral radii are estimated with power iteration on the implicit
// Kronecker operator, so no nk x nk matrix is ever materialized.

#ifndef LINBP_CORE_CONVERGENCE_H_
#define LINBP_CORE_CONVERGENCE_H_

#include "src/core/coupling.h"
#include "src/core/linbp.h"
#include "src/engine/propagation_backend.h"
#include "src/graph/graph.h"

namespace linbp {

/// rho(A) of the adjacency matrix behind any propagation backend (power
/// iteration; exact for symmetric A up to the iteration tolerance).
/// `ctx` drives the backend products — the result is bit-identical at
/// every width, but a streamed backend only overlaps prefetch with
/// compute on a parallel context. Streamed backends may throw
/// engine::StreamError mid-iteration.
double AdjacencySpectralRadius(const engine::PropagationBackend& backend,
                               int max_iterations = 500,
                               double tolerance = 1e-11,
                               const exec::ExecContext& ctx =
                                   exec::ExecContext::Default());
double AdjacencySpectralRadius(const Graph& graph, int max_iterations = 500,
                               double tolerance = 1e-11);

/// rho(Hhat) of a residual coupling matrix (symmetric Jacobi eigensolver).
double CouplingSpectralRadius(const DenseMatrix& hhat);

/// rho of the LinBP propagation operator M for the given scaled residual:
/// M = Hhat (x) A - Hhat^2 (x) D  (kLinBp) or Hhat (x) A  (kLinBpStar).
/// Streamed backends may throw engine::StreamError mid-iteration.
double LinBpOperatorSpectralRadius(const engine::PropagationBackend& backend,
                                   const DenseMatrix& hhat,
                                   LinBpVariant variant,
                                   int max_iterations = 500,
                                   double tolerance = 1e-11,
                                   const exec::ExecContext& ctx =
                                       exec::ExecContext::Default());
double LinBpOperatorSpectralRadius(const Graph& graph, const DenseMatrix& hhat,
                                   LinBpVariant variant,
                                   int max_iterations = 500,
                                   double tolerance = 1e-11);

/// Lemma 8: exact convergence test for the scaled residual `hhat`.
bool LinBpConverges(const engine::PropagationBackend& backend,
                    const DenseMatrix& hhat, LinBpVariant variant);
bool LinBpConverges(const Graph& graph, const DenseMatrix& hhat,
                    LinBpVariant variant);

/// Largest eps_H such that LinBP with Hhat = eps * Hhat_o converges
/// (Lemma 8 solved for eps by bisection on rho(M(eps)) = 1).
/// For kLinBpStar this equals 1 / (rho(Hhat_o) * rho(A)) in closed form.
/// Streamed backends may throw engine::StreamError mid-iteration.
double ExactEpsilonThreshold(const engine::PropagationBackend& backend,
                             const CouplingMatrix& coupling,
                             LinBpVariant variant, double tolerance = 1e-6,
                             const exec::ExecContext& ctx =
                                 exec::ExecContext::Default());
double ExactEpsilonThreshold(const Graph& graph, const CouplingMatrix& coupling,
                             LinBpVariant variant, double tolerance = 1e-6);

/// Lemma 9: sufficient eps_H bound via the minimum norm set M.
double SufficientEpsilonBound(const Graph& graph,
                              const CouplingMatrix& coupling,
                              LinBpVariant variant);

/// Lemma 23: the simpler (less tight) bound eps < 1 / (2 ||A|| ||Hhat_o||)
/// using induced norms only. Applies to LinBP (with echo cancellation).
double SimpleEpsilonBound(const Graph& graph, const CouplingMatrix& coupling);

/// Everything above bundled for reporting (used by benches/examples).
struct ConvergenceReport {
  double adjacency_spectral_radius = 0.0;
  double coupling_spectral_radius = 0.0;  // of the unscaled residual
  double exact_epsilon_linbp = 0.0;       // Lemma 8, kLinBp
  double exact_epsilon_linbp_star = 0.0;  // Lemma 8, kLinBpStar
  double sufficient_epsilon_linbp = 0.0;  // Lemma 9, kLinBp
  double sufficient_epsilon_linbp_star = 0.0;
  double simple_epsilon_linbp = 0.0;      // Lemma 23
};
ConvergenceReport AnalyzeConvergence(const Graph& graph,
                                     const CouplingMatrix& coupling);

}  // namespace linbp

#endif  // LINBP_CORE_CONVERGENCE_H_
