// Closed-form solutions of LinBP (Proposition 7 of the paper).
//
//   vec(B) = (I_nk - Hhat (x) A + Hhat^2 (x) D)^-1 vec(E)   (LinBP,  Eq. 11)
//   vec(B) = (I_nk - Hhat (x) A)^-1 vec(E)                  (LinBP*, Eq. 12)
//
// Two evaluation strategies are provided: a dense LU solve that literally
// materializes the Kronecker system (small graphs, tests) and the Jacobi
// fixed-point method on the implicit operator (any size; identical to the
// iterative updates but run to a tolerance).

#ifndef LINBP_CORE_CLOSED_FORM_H_
#define LINBP_CORE_CLOSED_FORM_H_

#include "src/core/linbp.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Materializes I_nk - Hhat (x) A [+ Hhat^2 (x) D] and LU-solves for the
/// final beliefs. Aborts if n * k exceeds `max_dim` (default keeps the
/// dense system below ~64 MB). The kLinBpExact variant applies Prop. 7 to
/// Eq. 29 (modulations Hhat* and Hhat Hhat*).
DenseMatrix ClosedFormLinBpDense(const Graph& graph, const DenseMatrix& hhat,
                                 const DenseMatrix& explicit_residuals,
                                 LinBpVariant variant = LinBpVariant::kLinBp,
                                 std::int64_t max_dim = 3000);

/// Solves the same system with the Jacobi method on the implicit Kronecker
/// operator; converges iff the spectral radius criterion of Lemma 8 holds.
struct ClosedFormIterativeResult {
  DenseMatrix beliefs;
  int iterations = 0;
  bool converged = false;
};
ClosedFormIterativeResult ClosedFormLinBpIterative(
    const Graph& graph, const DenseMatrix& hhat,
    const DenseMatrix& explicit_residuals,
    LinBpVariant variant = LinBpVariant::kLinBp, int max_iterations = 1000,
    double tolerance = 1e-13);

}  // namespace linbp

#endif  // LINBP_CORE_CLOSED_FORM_H_
