#include "src/core/labeling.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace linbp {

double StandardDeviation(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double variance = 0.0;
  for (const double v : x) variance += (v - mean) * (v - mean);
  return std::sqrt(variance / static_cast<double>(x.size()));
}

std::vector<double> Standardize(const std::vector<double>& x) {
  const double sigma = StandardDeviation(x);
  std::vector<double> out(x.size(), 0.0);
  if (sigma == 0.0) return out;
  double mean = 0.0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - mean) / sigma;
  return out;
}

DenseMatrix StandardizeRows(const DenseMatrix& beliefs) {
  DenseMatrix out(beliefs.rows(), beliefs.cols());
  std::vector<double> row(beliefs.cols());
  for (std::int64_t s = 0; s < beliefs.rows(); ++s) {
    for (std::int64_t c = 0; c < beliefs.cols(); ++c) row[c] = beliefs.At(s, c);
    const std::vector<double> standardized = Standardize(row);
    for (std::int64_t c = 0; c < beliefs.cols(); ++c) {
      out.At(s, c) = standardized[c];
    }
  }
  return out;
}

std::int64_t TopBeliefAssignment::TotalBeliefs() const {
  std::int64_t total = 0;
  for (const auto& cs : classes) total += static_cast<std::int64_t>(cs.size());
  return total;
}

TopBeliefAssignment TopBeliefs(const DenseMatrix& beliefs,
                               double tie_tolerance) {
  LINBP_CHECK(tie_tolerance >= 0.0);
  TopBeliefAssignment out;
  out.classes.resize(beliefs.rows());
  for (std::int64_t s = 0; s < beliefs.rows(); ++s) {
    double max_value = beliefs.At(s, 0);
    double min_value = beliefs.At(s, 0);
    for (std::int64_t c = 1; c < beliefs.cols(); ++c) {
      max_value = std::max(max_value, beliefs.At(s, c));
      min_value = std::min(min_value, beliefs.At(s, c));
    }
    const double spread = max_value - min_value;
    if (spread == 0.0) {
      // Fully tied row: every class is a top belief.
      for (std::int64_t c = 0; c < beliefs.cols(); ++c) {
        out.classes[s].push_back(static_cast<int>(c));
      }
      continue;
    }
    const double cutoff = max_value - tie_tolerance * spread;
    for (std::int64_t c = 0; c < beliefs.cols(); ++c) {
      if (beliefs.At(s, c) >= cutoff) {
        out.classes[s].push_back(static_cast<int>(c));
      }
    }
  }
  return out;
}

QualityMetrics CompareAssignments(const TopBeliefAssignment& ground_truth,
                                  const TopBeliefAssignment& other,
                                  const std::vector<std::int64_t>& nodes) {
  LINBP_CHECK(ground_truth.classes.size() == other.classes.size());
  QualityMetrics metrics;
  auto accumulate = [&](std::int64_t s) {
    const auto& gt = ground_truth.classes[s];
    const auto& ot = other.classes[s];
    metrics.ground_truth_total += static_cast<std::int64_t>(gt.size());
    metrics.other_total += static_cast<std::int64_t>(ot.size());
    // Both lists are sorted; count the intersection.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < gt.size() && j < ot.size()) {
      if (gt[i] == ot[j]) {
        ++metrics.shared;
        ++i;
        ++j;
      } else if (gt[i] < ot[j]) {
        ++i;
      } else {
        ++j;
      }
    }
  };
  if (nodes.empty()) {
    for (std::size_t s = 0; s < ground_truth.classes.size(); ++s) {
      accumulate(static_cast<std::int64_t>(s));
    }
  } else {
    for (const std::int64_t s : nodes) {
      LINBP_CHECK(s >= 0 &&
                  s < static_cast<std::int64_t>(ground_truth.classes.size()));
      accumulate(s);
    }
  }
  if (metrics.ground_truth_total > 0) {
    metrics.recall = static_cast<double>(metrics.shared) /
                     static_cast<double>(metrics.ground_truth_total);
  }
  if (metrics.other_total > 0) {
    metrics.precision = static_cast<double>(metrics.shared) /
                        static_cast<double>(metrics.other_total);
  }
  if (metrics.precision + metrics.recall > 0.0) {
    metrics.f1 = 2.0 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace linbp
