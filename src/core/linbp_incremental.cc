#include "src/core/linbp_incremental.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/engine/backend_ops.h"
#include "src/engine/in_memory_backend.h"
#include "src/la/kron_ops.h"
#include "src/util/check.h"

namespace linbp {

LinBpState::LinBpState(Graph graph, DenseMatrix hhat,
                       DenseMatrix explicit_residuals, LinBpOptions options)
    : graph_(std::make_shared<Graph>(std::move(graph))),
      backend_(std::make_shared<engine::InMemoryBackend>(graph_.get())),
      hhat_(std::move(hhat)),
      explicit_residuals_(std::move(explicit_residuals)),
      options_(options),
      beliefs_(explicit_residuals_) {
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(explicit_residuals_.rows() == graph_->num_nodes());
  LINBP_CHECK(explicit_residuals_.cols() == hhat_.rows());
  LINBP_CHECK_MSG(options_.variant != LinBpVariant::kLinBpExact,
                  "warm-started updates support kLinBp / kLinBpStar");
  cold_start_iterations_ = Solve();
}

LinBpState::LinBpState(
    std::shared_ptr<const engine::PropagationBackend> backend,
    DenseMatrix hhat, DenseMatrix explicit_residuals, LinBpOptions options)
    : backend_(std::move(backend)),
      hhat_(std::move(hhat)),
      explicit_residuals_(std::move(explicit_residuals)),
      options_(options),
      beliefs_(explicit_residuals_) {
  LINBP_CHECK(backend_ != nullptr);
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(explicit_residuals_.rows() == backend_->num_nodes());
  LINBP_CHECK(explicit_residuals_.cols() == hhat_.rows());
  LINBP_CHECK_MSG(options_.variant != LinBpVariant::kLinBpExact,
                  "warm-started updates support kLinBp / kLinBpStar");
  cold_start_iterations_ = Solve();
}

const Graph& LinBpState::graph() const {
  LINBP_CHECK_MSG(graph_ != nullptr,
                  "state was constructed from a backend without a graph");
  return *graph_;
}

int LinBpState::Solve() {
  const DenseMatrix hhat2 = hhat_.Multiply(hhat_);
  const bool with_echo = options_.variant == LinBpVariant::kLinBp;
  const exec::ExecContext& ctx = options_.exec;
  converged_ = false;
  last_error_.clear();
  for (int it = 1; it <= options_.max_iterations; ++it) {
    DenseMatrix propagated;
    if (!engine::BackendLinBpPropagate(*backend_, hhat_, hhat2, beliefs_,
                                       with_echo, ctx, &propagated,
                                       &last_error_)) {
      return -1;  // beliefs_ still hold sweep it - 1
    }
    const LinBpSweepStats stats =
        ApplyLinBpSweep(ctx, explicit_residuals_, propagated, &beliefs_);
    if (!std::isfinite(stats.delta) ||
        stats.magnitude > options_.divergence_threshold) {
      return it;  // diverged; converged_ stays false
    }
    if (stats.delta <= options_.tolerance) {
      converged_ = true;
      return it;
    }
  }
  return options_.max_iterations;
}

int LinBpState::UpdateExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                                      const DenseMatrix& residuals) {
  LINBP_CHECK(static_cast<std::int64_t>(nodes.size()) == residuals.rows());
  LINBP_CHECK(residuals.cols() == hhat_.rows());
  const std::int64_t n = backend_->num_nodes();
  for (const std::int64_t node : nodes) {
    LINBP_CHECK(node >= 0 && node < n);
  }
  // Snapshot for rollback: a streamed backend can fail several sweeps in
  // (shard corruption appearing mid-stream), and a half-advanced warm
  // start would poison every later update. Updates are all-or-nothing.
  const DenseMatrix saved_beliefs = beliefs_;
  DenseMatrix saved_rows(static_cast<std::int64_t>(nodes.size()),
                         hhat_.rows());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::int64_t c = 0; c < hhat_.rows(); ++c) {
      saved_rows.At(static_cast<std::int64_t>(i), c) =
          explicit_residuals_.At(nodes[i], c);
      explicit_residuals_.At(nodes[i], c) =
          residuals.At(static_cast<std::int64_t>(i), c);
    }
  }
  const int sweeps = Solve();
  if (sweeps < 0) {
    // Reverse order: with a duplicate node in the batch, the first
    // slot saved the true original and a later slot saved an already-
    // overwritten row — undoing back to front lands on the original.
    for (std::size_t i = nodes.size(); i-- > 0;) {
      for (std::int64_t c = 0; c < hhat_.rows(); ++c) {
        explicit_residuals_.At(nodes[i], c) =
            saved_rows.At(static_cast<std::int64_t>(i), c);
      }
    }
    beliefs_ = saved_beliefs;
  }
  return sweeps;
}

int LinBpState::AddEdges(const std::vector<Edge>& edges,
                         std::string* error) {
  if (graph_ == nullptr) {
    if (error != nullptr) {
      *error = "backend does not own a mutable graph (streamed states "
               "cannot add edges)";
    }
    return -1;
  }
  // Validate the whole batch up front with error returns — the Graph
  // constructor CHECK-aborts on these, which is the wrong failure mode
  // for edges arriving from user input or an update stream. The state is
  // only touched once every edge has passed.
  const std::string problem = ValidateNewEdgeBatch(*graph_, edges);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    return -1;
  }
  std::vector<Edge> combined = graph_->edges();
  combined.insert(combined.end(), edges.begin(), edges.end());
  // Assign in place: the InMemoryBackend holds a pointer to *graph_.
  *graph_ = Graph(graph_->num_nodes(), combined);
  const int sweeps = Solve();
  if (sweeps < 0 && error != nullptr) *error = last_error_;
  return sweeps;
}

}  // namespace linbp
