#include "src/core/linbp_incremental.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/la/kron_ops.h"
#include "src/util/check.h"

namespace linbp {

LinBpState::LinBpState(Graph graph, DenseMatrix hhat,
                       DenseMatrix explicit_residuals, LinBpOptions options)
    : graph_(std::move(graph)),
      hhat_(std::move(hhat)),
      explicit_residuals_(std::move(explicit_residuals)),
      options_(options),
      beliefs_(explicit_residuals_) {
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(explicit_residuals_.rows() == graph_.num_nodes());
  LINBP_CHECK(explicit_residuals_.cols() == hhat_.rows());
  LINBP_CHECK_MSG(options_.variant != LinBpVariant::kLinBpExact,
                  "warm-started updates support kLinBp / kLinBpStar");
  cold_start_iterations_ = Solve();
}

int LinBpState::Solve() {
  const DenseMatrix hhat2 = hhat_.Multiply(hhat_);
  const bool with_echo = options_.variant == LinBpVariant::kLinBp;
  const exec::ExecContext& ctx = options_.exec;
  converged_ = false;
  for (int it = 1; it <= options_.max_iterations; ++it) {
    const DenseMatrix propagated =
        LinBpPropagate(graph_.adjacency(), graph_.weighted_degrees(), hhat_,
                       hhat2, beliefs_, with_echo, ctx);
    const LinBpSweepStats stats =
        ApplyLinBpSweep(ctx, explicit_residuals_, propagated, &beliefs_);
    if (!std::isfinite(stats.delta) ||
        stats.magnitude > options_.divergence_threshold) {
      return it;  // diverged; converged_ stays false
    }
    if (stats.delta <= options_.tolerance) {
      converged_ = true;
      return it;
    }
  }
  return options_.max_iterations;
}

int LinBpState::UpdateExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                                      const DenseMatrix& residuals) {
  LINBP_CHECK(static_cast<std::int64_t>(nodes.size()) == residuals.rows());
  LINBP_CHECK(residuals.cols() == hhat_.rows());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    LINBP_CHECK(nodes[i] >= 0 && nodes[i] < graph_.num_nodes());
    for (std::int64_t c = 0; c < hhat_.rows(); ++c) {
      explicit_residuals_.At(nodes[i], c) =
          residuals.At(static_cast<std::int64_t>(i), c);
    }
  }
  return Solve();
}

int LinBpState::AddEdges(const std::vector<Edge>& edges,
                         std::string* error) {
  // Validate the whole batch up front with error returns — the Graph
  // constructor CHECK-aborts on these, which is the wrong failure mode
  // for edges arriving from user input or an update stream. The state is
  // only touched once every edge has passed.
  const std::string problem = ValidateNewEdgeBatch(graph_, edges);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    return -1;
  }
  std::vector<Edge> combined = graph_.edges();
  combined.insert(combined.end(), edges.begin(), edges.end());
  graph_ = Graph(graph_.num_nodes(), combined);
  return Solve();
}

}  // namespace linbp
