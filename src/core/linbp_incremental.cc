#include "src/core/linbp_incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "src/core/convergence.h"
#include "src/engine/in_memory_backend.h"
#include "src/la/kron_ops.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {

namespace {

// Every `return -1` on a validation path is a rejection; every undo of
// state after a mid-solve backend failure is a rollback.
void RecordRejection() { LINBP_OBS_COUNTER_ADD("linbp_state_rejections_total", 1); }
void RecordRollback() { LINBP_OBS_COUNTER_ADD("linbp_state_rollbacks_total", 1); }

}  // namespace

LinBpState::LinBpState(Graph graph, DenseMatrix hhat,
                       DenseMatrix explicit_residuals, LinBpOptions options)
    : graph_(std::make_shared<Graph>(std::move(graph))),
      backend_(std::make_shared<engine::InMemoryBackend>(graph_.get())),
      hhat_(std::move(hhat)),
      explicit_residuals_(std::move(explicit_residuals)),
      options_(options),
      beliefs_(explicit_residuals_) {
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(explicit_residuals_.rows() == graph_->num_nodes());
  LINBP_CHECK(explicit_residuals_.cols() == hhat_.rows());
  LINBP_CHECK_MSG(options_.variant != LinBpVariant::kLinBpExact,
                  "warm-started updates support kLinBp / kLinBpStar");
  cold_start_iterations_ = Solve();
}

LinBpState::LinBpState(
    std::shared_ptr<const engine::PropagationBackend> backend,
    DenseMatrix hhat, DenseMatrix explicit_residuals, LinBpOptions options)
    : backend_(std::move(backend)),
      hhat_(std::move(hhat)),
      explicit_residuals_(std::move(explicit_residuals)),
      options_(options),
      beliefs_(explicit_residuals_) {
  LINBP_CHECK(backend_ != nullptr);
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(explicit_residuals_.rows() == backend_->num_nodes());
  LINBP_CHECK(explicit_residuals_.cols() == hhat_.rows());
  LINBP_CHECK_MSG(options_.variant != LinBpVariant::kLinBpExact,
                  "warm-started updates support kLinBp / kLinBpStar");
  cold_start_iterations_ = Solve();
}

LinBpState::LinBpState(
    std::shared_ptr<Graph> graph,
    std::shared_ptr<const engine::PropagationBackend> backend,
    DenseMatrix hhat, DenseMatrix explicit_residuals, LinBpOptions options)
    : graph_(std::move(graph)),
      backend_(std::move(backend)),
      hhat_(std::move(hhat)),
      explicit_residuals_(std::move(explicit_residuals)),
      options_(options),
      beliefs_(explicit_residuals_) {
  LINBP_CHECK(graph_ != nullptr);
  LINBP_CHECK(backend_ != nullptr);
  LINBP_CHECK(backend_->num_nodes() == graph_->num_nodes());
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
  LINBP_CHECK(explicit_residuals_.rows() == graph_->num_nodes());
  LINBP_CHECK(explicit_residuals_.cols() == hhat_.rows());
  LINBP_CHECK_MSG(options_.variant != LinBpVariant::kLinBpExact,
                  "warm-started updates support kLinBp / kLinBpStar");
  cold_start_iterations_ = Solve();
}

const Graph& LinBpState::graph() const {
  LINBP_CHECK_MSG(graph_ != nullptr,
                  "state was constructed from a backend without a graph");
  return *graph_;
}

int LinBpState::Solve() {
  const DenseMatrix hhat2 = hhat_.Multiply(hhat_);
  const bool with_echo = options_.variant == LinBpVariant::kLinBp;
  converged_ = false;
  last_error_.clear();
  if (options_.estimate_spectral_radius && spectral_estimate_ < 0.0) {
    try {
      spectral_estimate_ = LinBpOperatorSpectralRadius(
          *backend_, hhat_, options_.variant, 500, 1e-11, options_.exec);
    } catch (const std::exception&) {
      // Streamed backend failed mid-estimate: diagnostics stay without a
      // spectral estimate; the solve itself proceeds (and reports its
      // own failure if the stream is truly broken).
    }
  }
  // The estimate (when any) travels as the hint, so the shared loop
  // never re-runs power iteration on a warm re-solve.
  LinBpOptions loop_options = options_;
  loop_options.estimate_spectral_radius = false;
  const core_internal::SweepLoopResult loop = core_internal::RunSweepLoop(
      *backend_, hhat_, hhat_, hhat2, with_echo, explicit_residuals_,
      loop_options, spectral_estimate_, &beliefs_);
  diagnostics_ = loop.diagnostics;
  if (loop.diagnostics.spectral_radius_estimate >= 0.0) {
    // A divergence abort computes the estimate for its error message;
    // keep it cached for later re-solves on the same operator.
    spectral_estimate_ = loop.diagnostics.spectral_radius_estimate;
  }
  converged_ = loop.converged;
  if (loop.failed) {
    last_error_ = loop.error;
    return -1;  // beliefs_ hold the last completed sweep; callers roll back
  }
  return loop.iterations;
}

int LinBpState::UpdateExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                                      const DenseMatrix& residuals,
                                      std::string* error) {
  // Validate up front with error returns, not CHECKs: node ids and
  // residual rows arrive straight off an update stream, and a hostile
  // line must never abort the server or touch the state.
  if (static_cast<std::int64_t>(nodes.size()) != residuals.rows()) {
    if (error != nullptr) {
      *error = "belief update names " + std::to_string(nodes.size()) +
               " nodes but carries " + std::to_string(residuals.rows()) +
               " residual rows";
    }
    RecordRejection();
    return -1;
  }
  if (residuals.cols() != hhat_.rows()) {
    if (error != nullptr) {
      *error = "belief update has " + std::to_string(residuals.cols()) +
               " classes but the coupling has " +
               std::to_string(hhat_.rows());
    }
    RecordRejection();
    return -1;
  }
  const std::int64_t n = backend_->num_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] < 0 || nodes[i] >= n) {
      if (error != nullptr) {
        *error = "belief update names node " + std::to_string(nodes[i]) +
                 " outside [0, " + std::to_string(n) + ")";
      }
      RecordRejection();
      return -1;
    }
    for (std::int64_t c = 0; c < residuals.cols(); ++c) {
      if (!std::isfinite(residuals.At(static_cast<std::int64_t>(i), c))) {
        if (error != nullptr) {
          *error = "belief update for node " + std::to_string(nodes[i]) +
                   " has a non-finite residual";
        }
        RecordRejection();
        return -1;
      }
    }
  }
  // Snapshot for rollback: a streamed backend can fail several sweeps in
  // (shard corruption appearing mid-stream), and a half-advanced warm
  // start would poison every later update. Updates are all-or-nothing.
  const DenseMatrix saved_beliefs = beliefs_;
  DenseMatrix saved_rows(static_cast<std::int64_t>(nodes.size()),
                         hhat_.rows());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::int64_t c = 0; c < hhat_.rows(); ++c) {
      saved_rows.At(static_cast<std::int64_t>(i), c) =
          explicit_residuals_.At(nodes[i], c);
      explicit_residuals_.At(nodes[i], c) =
          residuals.At(static_cast<std::int64_t>(i), c);
    }
  }
  const int sweeps = Solve();
  if (sweeps < 0) {
    // Reverse order: with a duplicate node in the batch, the first
    // slot saved the true original and a later slot saved an already-
    // overwritten row — undoing back to front lands on the original.
    for (std::size_t i = nodes.size(); i-- > 0;) {
      for (std::int64_t c = 0; c < hhat_.rows(); ++c) {
        explicit_residuals_.At(nodes[i], c) =
            saved_rows.At(static_cast<std::int64_t>(i), c);
      }
    }
    beliefs_ = saved_beliefs;
    RecordRollback();
    if (error != nullptr) *error = last_error_;
  }
  return sweeps;
}

bool LinBpState::RequireMutableGraph(std::string* error) const {
  if (graph_ != nullptr) return true;
  if (error != nullptr) {
    *error = "backend does not own a mutable graph (streamed states "
             "cannot mutate edges)";
  }
  RecordRejection();
  return false;
}

int LinBpState::RebuildGraphAndResolve(std::vector<Edge> new_edges,
                                       std::string* error) {
  // Snapshot for rollback: a streamed backend can fail several sweeps
  // in, and the contract is all-or-nothing — on failure the caller must
  // see the old graph AND the old beliefs, not the new graph with a
  // half-advanced warm start.
  Graph saved_graph = *graph_;
  const DenseMatrix saved_beliefs = beliefs_;
  // Assign in place: the backend holds a pointer to *graph_.
  *graph_ = Graph(graph_->num_nodes(), new_edges);
  // The mutation changed the operator, so any cached rho(M) is stale.
  // (On rollback this is merely conservative: the next solve re-fits.)
  spectral_estimate_ = -1.0;
  const int sweeps = Solve();
  if (sweeps < 0) {
    *graph_ = std::move(saved_graph);
    beliefs_ = saved_beliefs;
    RecordRollback();
    if (error != nullptr) *error = last_error_;
  }
  return sweeps;
}

int LinBpState::AddEdges(const std::vector<Edge>& edges,
                         std::string* error) {
  if (!RequireMutableGraph(error)) return -1;
  // Validate the whole batch up front with error returns — the Graph
  // constructor CHECK-aborts on these, which is the wrong failure mode
  // for edges arriving from user input or an update stream. The state is
  // only touched once every edge has passed.
  const std::string problem = ValidateNewEdgeBatch(*graph_, edges);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    RecordRejection();
    return -1;
  }
  std::vector<Edge> combined = graph_->edges();
  combined.insert(combined.end(), edges.begin(), edges.end());
  return RebuildGraphAndResolve(std::move(combined), error);
}

int LinBpState::RemoveEdges(const std::vector<Edge>& edges,
                            std::string* error) {
  if (!RequireMutableGraph(error)) return -1;
  const std::string problem = ValidateEdgeRemovalBatch(*graph_, edges);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    RecordRejection();
    return -1;
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> doomed;
  doomed.reserve(edges.size());
  for (const Edge& e : edges) {
    doomed.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  std::sort(doomed.begin(), doomed.end());
  std::vector<Edge> kept;
  kept.reserve(graph_->edges().size() - edges.size());
  for (const Edge& e : graph_->edges()) {
    if (!std::binary_search(doomed.begin(), doomed.end(),
                            std::make_pair(e.u, e.v))) {
      kept.push_back(e);
    }
  }
  return RebuildGraphAndResolve(std::move(kept), error);
}

int LinBpState::UpdateEdgeWeights(const std::vector<Edge>& edges,
                                  std::string* error) {
  if (!RequireMutableGraph(error)) return -1;
  const std::string problem = ValidateEdgeReweightBatch(*graph_, edges);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    RecordRejection();
    return -1;
  }
  std::vector<std::pair<std::pair<std::int64_t, std::int64_t>, double>>
      reweights;
  reweights.reserve(edges.size());
  for (const Edge& e : edges) {
    reweights.push_back(
        {{std::min(e.u, e.v), std::max(e.u, e.v)}, e.weight});
  }
  std::sort(reweights.begin(), reweights.end());
  std::vector<Edge> rebuilt = graph_->edges();
  for (Edge& e : rebuilt) {
    const auto it = std::lower_bound(
        reweights.begin(), reweights.end(),
        std::make_pair(std::make_pair(e.u, e.v),
                       -std::numeric_limits<double>::infinity()));
    if (it != reweights.end() && it->first == std::make_pair(e.u, e.v)) {
      e.weight = it->second;
    }
  }
  return RebuildGraphAndResolve(std::move(rebuilt), error);
}

}  // namespace linbp
