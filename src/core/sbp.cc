#include "src/core/sbp.h"

#include <algorithm>
#include <deque>

#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace linbp {

std::vector<std::int64_t> GeodesicNumbers(
    const Graph& graph, const std::vector<std::int64_t>& sources) {
  const std::int64_t n = graph.num_nodes();
  std::vector<std::int64_t> geodesic(n, kUnreachable);
  std::deque<std::int64_t> queue;
  for (const std::int64_t s : sources) {
    LINBP_CHECK(s >= 0 && s < n);
    if (geodesic[s] != 0) {
      geodesic[s] = 0;
      queue.push_back(s);
    }
  }
  const auto& row_ptr = graph.adjacency().row_ptr();
  const auto& col_idx = graph.adjacency().col_idx();
  while (!queue.empty()) {
    const std::int64_t u = queue.front();
    queue.pop_front();
    for (std::int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
      const std::int64_t v = col_idx[e];
      if (geodesic[v] == kUnreachable) {
        geodesic[v] = geodesic[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return geodesic;
}

SparseMatrix ModifiedAdjacency(const Graph& graph,
                               const std::vector<std::int64_t>& geodesic) {
  const std::int64_t n = graph.num_nodes();
  LINBP_CHECK(static_cast<std::int64_t>(geodesic.size()) == n);
  std::vector<Triplet> triplets;
  for (const Edge& e : graph.edges()) {
    const std::int64_t gu = geodesic[e.u];
    const std::int64_t gv = geodesic[e.v];
    if (gu == kUnreachable || gv == kUnreachable || gu == gv) continue;
    if (gu < gv) {
      triplets.push_back({e.u, e.v, e.weight});
    } else {
      triplets.push_back({e.v, e.u, e.weight});
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(triplets));
}

SbpResult RunSbp(const Graph& graph, const DenseMatrix& hhat,
                 const DenseMatrix& explicit_residuals,
                 const std::vector<std::int64_t>& explicit_nodes,
                 const exec::ExecContext& exec,
                 const SweepObserver& observer) {
  const std::int64_t n = graph.num_nodes();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(hhat.cols() == k && k >= 2);
  LINBP_CHECK(explicit_residuals.rows() == n && explicit_residuals.cols() == k);

  SbpResult result;
  result.geodesic = GeodesicNumbers(graph, explicit_nodes);
  result.beliefs = DenseMatrix(n, k);
  for (const std::int64_t s : explicit_nodes) {
    for (std::int64_t c = 0; c < k; ++c) {
      result.beliefs.At(s, c) = explicit_residuals.At(s, c);
    }
  }

  // Bucket nodes by geodesic number so levels can be processed in order.
  std::int64_t max_geodesic = 0;
  for (const std::int64_t g : result.geodesic) {
    max_geodesic = std::max(max_geodesic, g);
  }
  result.max_geodesic = max_geodesic;
  std::vector<std::vector<std::int64_t>> levels(max_geodesic + 1);
  for (std::int64_t s = 0; s < n; ++s) {
    if (result.geodesic[s] > 0) levels[result.geodesic[s]].push_back(s);
  }

  const auto& row_ptr = graph.adjacency().row_ptr();
  const auto& col_idx = graph.adjacency().col_idx();
  const auto& values = graph.adjacency().values();
  for (std::int64_t level = 1; level <= max_geodesic; ++level) {
    // Every node of this level reads only level - 1 beliefs and writes its
    // own row, so the level is embarrassingly parallel.
    const std::vector<std::int64_t>& frontier = levels[level];
    obs::ScopedSpan span("sbp_level");
    WallTimer level_timer;
    exec.ParallelFor(
        0, static_cast<std::int64_t>(frontier.size()), /*min_grain=*/64,
        [&](std::int64_t begin, std::int64_t end) {
          std::vector<double> aggregated(k);
          for (std::int64_t i = begin; i < end; ++i) {
            const std::int64_t t = frontier[i];
            // Sum the weighted beliefs of parents (geodesic level - 1) ...
            std::fill(aggregated.begin(), aggregated.end(), 0.0);
            for (std::int64_t e = row_ptr[t]; e < row_ptr[t + 1]; ++e) {
              const std::int64_t s = col_idx[e];
              if (result.geodesic[s] != level - 1) continue;
              const double w = values[e];
              for (std::int64_t c = 0; c < k; ++c) {
                aggregated[c] += w * result.beliefs.At(s, c);
              }
            }
            // ... then modulate once through Hhat (b_t = Hhat^T * sum, i.e.
            // the row-vector product sum^T * Hhat as in B <- A B Hhat).
            for (std::int64_t c = 0; c < k; ++c) {
              double value = 0.0;
              for (std::int64_t j = 0; j < k; ++j) {
                value += aggregated[j] * hhat.At(j, c);
              }
              result.beliefs.At(t, c) = value;
            }
          }
        });
    const double seconds = level_timer.Seconds();
    const std::int64_t frontier_rows =
        static_cast<std::int64_t>(frontier.size());
    std::int64_t frontier_nnz = 0;
    for (const std::int64_t t : frontier) {
      frontier_nnz += row_ptr[t + 1] - row_ptr[t];
    }
    LINBP_OBS_COUNTER_ADD("sbp_levels_total", 1);
    LINBP_OBS_COUNTER_ADD("sbp_nodes_processed_total", frontier_rows);
    LINBP_OBS_COUNTER_ADD("sbp_nnz_processed_total", frontier_nnz);
    LINBP_OBS_HISTOGRAM_OBSERVE("sbp_level_seconds", seconds);
    if (span.active()) {
      span.SetAttr("level", level);
      span.SetAttr("rows", frontier_rows);
      span.SetAttr("nnz", frontier_nnz);
    }
    if (observer) {
      SweepTelemetry telemetry;
      telemetry.sweep = static_cast<int>(level);
      telemetry.seconds = seconds;
      telemetry.rows = frontier_rows;
      telemetry.nnz = frontier_nnz;
      observer(telemetry);
    }
  }
  return result;
}

}  // namespace linbp
