// Linearized Belief Propagation (Theorem 4 of the paper).
//
// Iterative updates:
//   LinBP  (Eq. 6):  B <- E + A*B*Hhat - D*B*Hhat^2   (echo cancellation)
//   LinBP* (Eq. 7):  B <- E + A*B*Hhat
// plus the "exact" variant of Eq. 29, which keeps Hhat* = (I-Hhat^2)^-1 Hhat
// instead of approximating it by Hhat:
//   LinBP^e:         B <- E + A*B*Hhat* - D*B*Hhat*Hhat*
// All matrices are residuals (centered); beliefs are n x k.

#ifndef LINBP_CORE_LINBP_H_
#define LINBP_CORE_LINBP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/engine/propagation_backend.h"
#include "src/exec/exec_context.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"
#include "src/la/precision.h"

namespace linbp {

namespace obs {
class ScopedSpan;
}  // namespace obs

/// Which update equation to run.
enum class LinBpVariant {
  kLinBp,       // Eq. 6, with echo cancellation
  kLinBpStar,   // Eq. 7, without echo cancellation
  kLinBpExact,  // Eq. 29, with the exact Hhat* modulation
};

/// Telemetry for one completed solver sweep, delivered to a
/// SweepObserver. One "sweep" is one propagate + apply over all rows
/// (LinBP), one Jacobi iteration (FaBP), or one geodesic level (SBP).
struct SweepTelemetry {
  int sweep = 0;                // 1-based within this (re-)solve
  double delta = 0.0;           // max abs belief change of the sweep
  double delta_l2 = 0.0;        // L2 norm of the belief change
  double max_magnitude = 0.0;   // max abs belief after the sweep
  double seconds = 0.0;         // wall time of propagate + apply
  /// delta / previous sweep's delta — the one-step contraction estimate
  /// (values < 1 contract; 0 on the first sweep or a zero previous
  /// delta). The run-level fit is on the result's diagnostics.
  double contraction = 0.0;
  std::int64_t rows = 0;        // belief rows updated
  std::int64_t nnz = 0;         // stored adjacency entries propagated
  std::int64_t bytes_streamed = 0;  // shard bytes read during the sweep
  /// Belief-storage precision the sweep ran at (recorded on the sweep's
  /// trace span). Delta norms are fp64-accumulated either way.
  Precision precision = Precision::kF64;
};

/// Per-sweep telemetry hook. Observers only *read* solver state —
/// beliefs are bit-identical with or without one installed
/// (test-enforced in tests/core/linbp_test.cc).
using SweepObserver = std::function<void(const SweepTelemetry&)>;

/// Options for RunLinBp.
struct LinBpOptions {
  LinBpVariant variant = LinBpVariant::kLinBp;
  /// Maximum number of update sweeps. The paper's timing experiments use a
  /// fixed count of 5; quality experiments iterate to convergence.
  int max_iterations = 100;
  /// Stop when the largest absolute belief change falls below this.
  double tolerance = 1e-12;
  /// Treat belief magnitudes larger than this as divergence.
  double divergence_threshold = 1e12;
  /// Where the per-sweep SpMM and belief updates run. Defaults to the
  /// process-wide context (LINBP_THREADS); results are bit-identical
  /// across thread counts.
  exec::ExecContext exec = exec::ExecContext::Default();
  /// Called after every completed sweep (cold solves and LinBpState warm
  /// re-solves alike). Null to disable. Independent of this hook, every
  /// sweep also records into the global obs registry (metrics + the
  /// "linbp_sweep" time series) and the active tracer.
  SweepObserver sweep_observer;
  /// Estimate rho(M) of the update operator by power iteration before
  /// the solve (Lemma 8's exact convergence criterion) and surface it on
  /// the result's diagnostics. Costs ~hundreds of extra backend products,
  /// so it is opt-in; ignored for kLinBpExact. Beliefs are unaffected.
  bool estimate_spectral_radius = false;
  /// Divergence early-abort: when the residual delta has risen for this
  /// many consecutive sweeps, exceeds the run's first delta, and the
  /// fitted contraction rate rho-hat is above 1, the solve stops with
  /// failed (and diverged) set and a diagnostic error instead of
  /// spinning to max_iterations. 0 disables the abort.
  int divergence_patience = 5;
  /// Storage precision of the belief matrices on the sweep hot path.
  /// kF64 (the default) is bit-identical to the pre-precision-seam
  /// solver. kF32 stores beliefs/residuals as float and runs the f32
  /// backend kernels — roughly half the memory traffic per sweep — while
  /// every delta norm, diagnostic fit, and spectral estimate still
  /// accumulates in fp64; the result's beliefs are widened back to fp64
  /// on exit. See src/la/precision.h for when f32 is safe.
  Precision precision = Precision::kF64;
};

/// Convergence diagnostics of one (re-)solve, fitted from the per-sweep
/// residual deltas. Purely observational: computed from the same sweep
/// statistics the solver already tracks, never from extra solver math.
struct ConvergenceDiagnostics {
  /// Empirical contraction rate rho-hat (la FitContractionRate over the
  /// trailing sweeps). Asymptotically equals rho(M) of the update
  /// operator — the quantity Lemma 8 requires below 1. 0 when fewer
  /// than 2 usable deltas exist.
  double empirical_contraction = 0.0;
  /// Sweeps whose deltas entered the rho-hat fit.
  int fitted_sweeps = 0;
  /// Predicted further sweeps to reach options.tolerance at rho-hat
  /// geometric decay from the last delta. 0 when already converged, -1
  /// when unknown (no usable fit or rho-hat >= 1).
  double predicted_sweeps_to_tolerance = -1.0;
  /// rho(M) power-iteration estimate (LinBpOperatorSpectralRadius), only
  /// when options.estimate_spectral_radius was set or a divergence abort
  /// computed it for its error message; -1 when not computed. Compare
  /// against empirical_contraction: they agree within a few percent on a
  /// converging run.
  double spectral_radius_estimate = -1.0;
};

/// Result of a LinBP run. Beliefs are residuals (rows sum to ~0).
struct LinBpResult {
  DenseMatrix beliefs;
  int iterations = 0;
  bool converged = false;
  bool diverged = false;
  /// A streamed backend failed mid-run (I/O error, shard checksum
  /// mismatch). `beliefs` then holds the last fully completed sweep —
  /// the failing sweep is never partially applied — and `error`
  /// describes the failure. Always false for in-memory backends.
  bool failed = false;
  std::string error;
  double last_delta = 0.0;
  /// Fitted convergence diagnostics of this run (see the struct docs).
  ConvergenceDiagnostics diagnostics;
};

/// Runs LinBP over any propagation backend with scaled residual coupling
/// `hhat` (k x k) and explicit residual beliefs `explicit_residuals`
/// (n x k; zero rows for unlabeled nodes). Edge weights are honored per
/// Sect. 5.2. Beliefs are bit-identical across backends and thread
/// counts (see src/engine/propagation_backend.h).
LinBpResult RunLinBp(const engine::PropagationBackend& backend,
                     const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options = {});

/// RunLinBp on a resident graph (wraps engine::InMemoryBackend).
LinBpResult RunLinBp(const Graph& graph, const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options = {});

/// The Hhat* = (I_k - Hhat^2)^-1 * Hhat modulation matrix of Lemma 6.
/// Requires I - Hhat^2 to be invertible (true for all entries << 1/k).
DenseMatrix ExactModulation(const DenseMatrix& hhat);

/// Convergence statistics of one belief sweep.
struct LinBpSweepStats {
  double delta = 0.0;      // max abs belief change
  double delta_l2 = 0.0;   // L2 norm of the belief change
  double magnitude = 0.0;  // max abs belief
};

/// Applies one Jacobi sweep in place: beliefs <- explicit_residuals +
/// propagated, tracking the sweep statistics. Chunked over `ctx`; rows
/// are chunk-owned and max-reductions are exact, so the update is
/// bit-identical across thread counts. Shared by RunLinBp and the
/// warm-started LinBpState.
LinBpSweepStats ApplyLinBpSweep(const exec::ExecContext& ctx,
                                const DenseMatrix& explicit_residuals,
                                const DenseMatrix& propagated,
                                DenseMatrix* beliefs);

namespace core_internal {
/// Records one completed LinBP sweep into the global metrics registry
/// (linbp_sweeps_total, linbp_sweep_seconds, linbp_rows_processed_total,
/// linbp_nnz_processed_total), the "linbp_sweep" time series, the
/// enclosing trace span (may be null), and the observer (may be empty).
/// Shared by RunLinBp and LinBpState::Solve so cold and warm sweeps
/// report identically.
void ReportSweep(const SweepTelemetry& telemetry, const SweepObserver& observer,
                 obs::ScopedSpan* span);

/// Outcome of one RunSweepLoop call — LinBpResult minus the beliefs,
/// which the loop updates in place.
struct SweepLoopResult {
  int iterations = 0;
  bool converged = false;
  bool diverged = false;
  bool failed = false;
  std::string error;
  double last_delta = 0.0;
  ConvergenceDiagnostics diagnostics;
};

/// The shared LinBP Jacobi sweep loop: propagate + apply until
/// convergence, divergence, failure, or options.max_iterations, with all
/// observability (metrics, time series, spans, observer, diagnostics
/// fit, divergence early-abort) attached. `modulation` /
/// `echo_modulation` / `with_echo` select the variant's update;
/// `spectral_hint` >= 0 supplies a precomputed rho(M) estimate (warm
/// LinBpState re-solves) so the loop never re-runs power iteration.
/// `beliefs` is updated in place and never partially mutated by a
/// failing sweep. Used by RunLinBp and LinBpState::Solve.
SweepLoopResult RunSweepLoop(const engine::PropagationBackend& backend,
                             const DenseMatrix& hhat,
                             const DenseMatrix& modulation,
                             const DenseMatrix& echo_modulation, bool with_echo,
                             const DenseMatrix& explicit_residuals,
                             const LinBpOptions& options, double spectral_hint,
                             DenseMatrix* beliefs);
}  // namespace core_internal

}  // namespace linbp

#endif  // LINBP_CORE_LINBP_H_
