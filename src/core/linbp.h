// Linearized Belief Propagation (Theorem 4 of the paper).
//
// Iterative updates:
//   LinBP  (Eq. 6):  B <- E + A*B*Hhat - D*B*Hhat^2   (echo cancellation)
//   LinBP* (Eq. 7):  B <- E + A*B*Hhat
// plus the "exact" variant of Eq. 29, which keeps Hhat* = (I-Hhat^2)^-1 Hhat
// instead of approximating it by Hhat:
//   LinBP^e:         B <- E + A*B*Hhat* - D*B*Hhat*Hhat*
// All matrices are residuals (centered); beliefs are n x k.

#ifndef LINBP_CORE_LINBP_H_
#define LINBP_CORE_LINBP_H_

#include <cstdint>
#include <string>

#include "src/engine/propagation_backend.h"
#include "src/exec/exec_context.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Which update equation to run.
enum class LinBpVariant {
  kLinBp,       // Eq. 6, with echo cancellation
  kLinBpStar,   // Eq. 7, without echo cancellation
  kLinBpExact,  // Eq. 29, with the exact Hhat* modulation
};

/// Options for RunLinBp.
struct LinBpOptions {
  LinBpVariant variant = LinBpVariant::kLinBp;
  /// Maximum number of update sweeps. The paper's timing experiments use a
  /// fixed count of 5; quality experiments iterate to convergence.
  int max_iterations = 100;
  /// Stop when the largest absolute belief change falls below this.
  double tolerance = 1e-12;
  /// Treat belief magnitudes larger than this as divergence.
  double divergence_threshold = 1e12;
  /// Where the per-sweep SpMM and belief updates run. Defaults to the
  /// process-wide context (LINBP_THREADS); results are bit-identical
  /// across thread counts.
  exec::ExecContext exec = exec::ExecContext::Default();
};

/// Result of a LinBP run. Beliefs are residuals (rows sum to ~0).
struct LinBpResult {
  DenseMatrix beliefs;
  int iterations = 0;
  bool converged = false;
  bool diverged = false;
  /// A streamed backend failed mid-run (I/O error, shard checksum
  /// mismatch). `beliefs` then holds the last fully completed sweep —
  /// the failing sweep is never partially applied — and `error`
  /// describes the failure. Always false for in-memory backends.
  bool failed = false;
  std::string error;
  double last_delta = 0.0;
};

/// Runs LinBP over any propagation backend with scaled residual coupling
/// `hhat` (k x k) and explicit residual beliefs `explicit_residuals`
/// (n x k; zero rows for unlabeled nodes). Edge weights are honored per
/// Sect. 5.2. Beliefs are bit-identical across backends and thread
/// counts (see src/engine/propagation_backend.h).
LinBpResult RunLinBp(const engine::PropagationBackend& backend,
                     const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options = {});

/// RunLinBp on a resident graph (wraps engine::InMemoryBackend).
LinBpResult RunLinBp(const Graph& graph, const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options = {});

/// The Hhat* = (I_k - Hhat^2)^-1 * Hhat modulation matrix of Lemma 6.
/// Requires I - Hhat^2 to be invertible (true for all entries << 1/k).
DenseMatrix ExactModulation(const DenseMatrix& hhat);

/// Convergence statistics of one belief sweep.
struct LinBpSweepStats {
  double delta = 0.0;      // max abs belief change
  double magnitude = 0.0;  // max abs belief
};

/// Applies one Jacobi sweep in place: beliefs <- explicit_residuals +
/// propagated, tracking the sweep statistics. Chunked over `ctx`; rows
/// are chunk-owned and max-reductions are exact, so the update is
/// bit-identical across thread counts. Shared by RunLinBp and the
/// warm-started LinBpState.
LinBpSweepStats ApplyLinBpSweep(const exec::ExecContext& ctx,
                                const DenseMatrix& explicit_residuals,
                                const DenseMatrix& propagated,
                                DenseMatrix* beliefs);

}  // namespace linbp

#endif  // LINBP_CORE_LINBP_H_
