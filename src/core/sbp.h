// Single-Pass Belief Propagation (Sect. 6 of the paper).
//
// SBP assigns to every node the beliefs aggregated over all shortest paths
// from explicitly labeled nodes (Def. 15): for a node with geodesic number
// g, beliefs are Hhat^g applied to the weighted sum of explicit beliefs at
// the far end of each geodesic path. Equivalently (Lemma 17), SBP equals
// LinBP* on the DAG obtained by dropping edges between equal geodesic
// numbers and orienting the rest from lower to higher geodesic number.
// Information crosses every edge at most once, hence "single-pass".

#ifndef LINBP_CORE_SBP_H_
#define LINBP_CORE_SBP_H_

#include <cstdint>
#include <vector>

#include "src/core/linbp.h"
#include "src/exec/exec_context.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Geodesic number marker for nodes unreachable from any explicit node.
inline constexpr std::int64_t kUnreachable = -1;

/// Geodesic numbers (Def. 14): BFS distance to the nearest node in
/// `sources`; kUnreachable for nodes in other components.
std::vector<std::int64_t> GeodesicNumbers(
    const Graph& graph, const std::vector<std::int64_t>& sources);

/// The modified adjacency matrix A* of Lemma 17: edges between equal
/// geodesic numbers removed, remaining edges directed from lower to higher
/// geodesic number; A*(s, t) = w means s -> t. The result is a DAG.
SparseMatrix ModifiedAdjacency(const Graph& graph,
                               const std::vector<std::int64_t>& geodesic);

/// Result of an SBP run. Beliefs are residuals; unreachable nodes have
/// zero beliefs and geodesic kUnreachable.
struct SbpResult {
  DenseMatrix beliefs;
  std::vector<std::int64_t> geodesic;
  std::int64_t max_geodesic = 0;
};

/// Runs SBP: propagates explicit residual beliefs level by level along the
/// geodesic DAG. `explicit_nodes` lists the labeled nodes (their rows in
/// `explicit_residuals` are the prior beliefs; other rows are ignored).
/// Nodes within one geodesic level only read the previous level, so each
/// level fans out on `exec`; per-node ownership keeps results bit-identical
/// across thread counts. `observer` receives one SweepTelemetry per
/// geodesic level (an SBP "sweep": rows = frontier size, nnz = incident
/// entries scanned); independent of it, levels record into the global
/// obs registry and active tracer.
SbpResult RunSbp(const Graph& graph, const DenseMatrix& hhat,
                 const DenseMatrix& explicit_residuals,
                 const std::vector<std::int64_t>& explicit_nodes,
                 const exec::ExecContext& exec =
                     exec::ExecContext::Default(),
                 const SweepObserver& observer = {});

}  // namespace linbp

#endif  // LINBP_CORE_SBP_H_
