#include "src/core/coupling_estimation.h"

#include <cmath>

#include "src/util/check.h"

namespace linbp {

DenseMatrix SinkhornKnopp(const DenseMatrix& positive, int max_iterations,
                          double tolerance) {
  const std::int64_t k = positive.rows();
  LINBP_CHECK(positive.cols() == k);
  for (const double v : positive.data()) {
    LINBP_CHECK_MSG(v > 0.0, "Sinkhorn needs strictly positive entries");
  }
  // Symmetric scaling: H = diag(x) M diag(x) with x updated until rows sum
  // to 1. For symmetric M this converges to the symmetric doubly
  // stochastic scaling.
  std::vector<double> scale(k, 1.0);
  DenseMatrix h = positive;
  for (int it = 0; it < max_iterations; ++it) {
    double max_error = 0.0;
    for (std::int64_t i = 0; i < k; ++i) {
      double row_sum = 0.0;
      for (std::int64_t j = 0; j < k; ++j) {
        row_sum += positive.At(i, j) * scale[i] * scale[j];
      }
      max_error = std::max(max_error, std::abs(row_sum - 1.0));
      scale[i] /= std::sqrt(row_sum);
    }
    if (max_error < tolerance) break;
  }
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < k; ++j) {
      h.At(i, j) = positive.At(i, j) * scale[i] * scale[j];
    }
  }
  // Clean up the residual asymmetry from finite iteration counts.
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = i + 1; j < k; ++j) {
      const double symmetric = 0.5 * (h.At(i, j) + h.At(j, i));
      h.At(i, j) = symmetric;
      h.At(j, i) = symmetric;
    }
  }
  return h;
}

std::optional<CouplingEstimate> EstimateCoupling(
    const Graph& graph, const std::vector<int>& labels, std::int64_t k,
    const CouplingEstimationOptions& options) {
  LINBP_CHECK(static_cast<std::int64_t>(labels.size()) == graph.num_nodes());
  LINBP_CHECK(k >= 2);
  LINBP_CHECK(options.smoothing >= 0.0);

  DenseMatrix counts(k, k);
  std::int64_t observed = 0;
  for (const Edge& e : graph.edges()) {
    const int cu = labels[e.u];
    const int cv = labels[e.v];
    if (cu < 0 || cv < 0) continue;
    LINBP_CHECK(cu < k && cv < k);
    // Count both orientations so the matrix stays symmetric.
    counts.At(cu, cv) += e.weight;
    counts.At(cv, cu) += e.weight;
    ++observed;
  }
  if (observed == 0) return std::nullopt;

  DenseMatrix smoothed = counts.AddScalar(options.smoothing);
  if (options.smoothing == 0.0) {
    for (const double v : smoothed.data()) {
      if (v <= 0.0) return std::nullopt;  // Sinkhorn needs positivity
    }
  }
  const DenseMatrix balanced =
      SinkhornKnopp(smoothed, options.max_sinkhorn_iterations,
                    options.sinkhorn_tolerance);
  CouplingEstimate estimate{
      CouplingMatrix::FromStochastic(balanced, /*tol=*/1e-6), observed,
      counts};
  return estimate;
}

}  // namespace linbp
