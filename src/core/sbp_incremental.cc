#include "src/core/sbp_incremental.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "src/util/check.h"

namespace linbp {

SbpState::SbpState(std::int64_t num_nodes, DenseMatrix hhat,
                   exec::ExecContext exec)
    : adjacency_(num_nodes),
      hhat_(std::move(hhat)),
      beliefs_(num_nodes, hhat_.rows()),
      geodesic_(num_nodes, kUnreachable),
      is_explicit_(num_nodes, false),
      exec_(std::move(exec)) {
  LINBP_CHECK(hhat_.rows() == hhat_.cols() && hhat_.rows() >= 2);
}

SbpState SbpState::FromGraph(const Graph& graph, DenseMatrix hhat,
                             const DenseMatrix& explicit_residuals,
                             const std::vector<std::int64_t>& explicit_nodes,
                             exec::ExecContext exec) {
  SbpState state(graph.num_nodes(), std::move(hhat), std::move(exec));
  for (const Edge& e : graph.edges()) {
    state.adjacency_[e.u].push_back({e.v, e.weight});
    state.adjacency_[e.v].push_back({e.u, e.weight});
  }
  DenseMatrix rows(static_cast<std::int64_t>(explicit_nodes.size()),
                   state.k());
  for (std::size_t i = 0; i < explicit_nodes.size(); ++i) {
    for (std::int64_t c = 0; c < state.k(); ++c) {
      rows.At(static_cast<std::int64_t>(i), c) =
          explicit_residuals.At(explicit_nodes[i], c);
    }
  }
  state.AddExplicitBeliefs(explicit_nodes, rows);
  return state;
}

void SbpState::RecomputeBeliefs(std::int64_t t) {
  const std::int64_t num_classes = k();
  std::vector<double> aggregated(num_classes, 0.0);
  for (const Neighbor& nb : adjacency_[t]) {
    if (geodesic_[nb.node] != geodesic_[t] - 1) continue;
    for (std::int64_t c = 0; c < num_classes; ++c) {
      aggregated[c] += nb.weight * beliefs_.At(nb.node, c);
    }
  }
  for (std::int64_t c = 0; c < num_classes; ++c) {
    double value = 0.0;
    for (std::int64_t j = 0; j < num_classes; ++j) {
      value += aggregated[j] * hhat_.At(j, c);
    }
    beliefs_.At(t, c) = value;
  }
}

void SbpState::PropagateDirty(std::vector<std::int64_t> dirty) {
  // Bucket by geodesic level; process ascending so parents are final when a
  // child is recomputed. Cascades only ever target level g + 1, so once a
  // level starts its bucket is complete: the recompute phase can fan out
  // (each node reads level g - 1 and writes its own belief row), and only
  // the child-enqueue scan stays serial.
  std::vector<std::vector<std::int64_t>> buckets;
  std::vector<bool> marked(num_nodes(), false);
  auto enqueue = [&](std::int64_t node) {
    if (marked[node] || is_explicit_[node]) return;
    const std::int64_t g = geodesic_[node];
    if (g == kUnreachable) return;
    if (static_cast<std::int64_t>(buckets.size()) <= g) buckets.resize(g + 1);
    buckets[g].push_back(node);
    marked[node] = true;
  };
  for (const std::int64_t node : dirty) enqueue(node);
  for (std::size_t level = 1; level < buckets.size(); ++level) {
    // buckets may grow (at higher levels) while iterating; index-based
    // access throughout instead of holding references.
    exec_.ParallelFor(
        0, static_cast<std::int64_t>(buckets[level].size()), /*min_grain=*/64,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            RecomputeBeliefs(buckets[level][i]);
          }
        });
    last_update_recomputed_nodes_ +=
        static_cast<std::int64_t>(buckets[level].size());
    for (std::size_t i = 0; i < buckets[level].size(); ++i) {
      const std::int64_t t = buckets[level][i];
      for (const Neighbor& nb : adjacency_[t]) {
        if (geodesic_[nb.node] == geodesic_[t] + 1) enqueue(nb.node);
      }
    }
  }
}

void SbpState::AddExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                                  const DenseMatrix& residuals) {
  LINBP_CHECK(static_cast<std::int64_t>(nodes.size()) == residuals.rows());
  LINBP_CHECK(residuals.cols() == k());
  last_update_recomputed_nodes_ = 0;

  // Phase 1: install the new explicit beliefs and geodesic number 0.
  std::unordered_map<std::int64_t, std::int64_t> old_geodesic;
  std::deque<std::int64_t> relax_queue;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::int64_t v = nodes[i];
    LINBP_CHECK(v >= 0 && v < num_nodes());
    if (!is_explicit_[v]) {
      is_explicit_[v] = true;
      explicit_nodes_.push_back(v);
      old_geodesic.emplace(v, geodesic_[v]);
      geodesic_[v] = 0;
      relax_queue.push_back(v);
    }
    for (std::int64_t c = 0; c < k(); ++c) {
      beliefs_.At(v, c) = residuals.At(static_cast<std::int64_t>(i), c);
    }
  }

  // Phase 2: BFS relaxation of geodesic numbers (they can only decrease).
  while (!relax_queue.empty()) {
    const std::int64_t u = relax_queue.front();
    relax_queue.pop_front();
    for (const Neighbor& nb : adjacency_[u]) {
      if (geodesic_[nb.node] == kUnreachable ||
          geodesic_[nb.node] > geodesic_[u] + 1) {
        old_geodesic.emplace(nb.node, geodesic_[nb.node]);
        geodesic_[nb.node] = geodesic_[u] + 1;
        relax_queue.push_back(nb.node);
      }
    }
  }

  // Phase 3: seed the dirty set.
  std::vector<std::int64_t> dirty;
  for (const auto& [changed, old_g] : old_geodesic) {
    dirty.push_back(changed);  // enqueue skips explicit nodes itself
    for (const Neighbor& nb : adjacency_[changed]) {
      // Former children lost a parent; new children gained one.
      if ((old_g != kUnreachable && geodesic_[nb.node] == old_g + 1) ||
          geodesic_[nb.node] == geodesic_[changed] + 1) {
        dirty.push_back(nb.node);
      }
    }
  }
  // Overwritten explicit beliefs (geodesic unchanged) still dirty their
  // children.
  for (const std::int64_t v : nodes) {
    for (const Neighbor& nb : adjacency_[v]) {
      if (geodesic_[nb.node] == 1) dirty.push_back(nb.node);
    }
  }
  PropagateDirty(std::move(dirty));
}

void SbpState::AddEdges(const std::vector<Edge>& edges) {
  last_update_recomputed_nodes_ = 0;

  // Phase 1: extend the adjacency lists.
  for (const Edge& e : edges) {
    LINBP_CHECK(e.u >= 0 && e.u < num_nodes() && e.v >= 0 &&
                e.v < num_nodes());
    LINBP_CHECK_MSG(e.u != e.v, "self-loops are not supported");
    for (const Neighbor& nb : adjacency_[e.u]) {
      LINBP_CHECK_MSG(nb.node != e.v, "duplicate edge");
    }
    adjacency_[e.u].push_back({e.v, e.weight});
    adjacency_[e.v].push_back({e.u, e.weight});
  }

  // Phase 2: relax geodesic numbers across the new edges, then outward.
  std::unordered_map<std::int64_t, std::int64_t> old_geodesic;
  std::deque<std::int64_t> relax_queue;
  auto relax = [&](std::int64_t from, std::int64_t to) {
    if (geodesic_[from] == kUnreachable) return;
    const std::int64_t candidate = geodesic_[from] + 1;
    if (geodesic_[to] == kUnreachable || geodesic_[to] > candidate) {
      old_geodesic.emplace(to, geodesic_[to]);
      geodesic_[to] = candidate;
      relax_queue.push_back(to);
    }
  };
  for (const Edge& e : edges) {
    relax(e.u, e.v);
    relax(e.v, e.u);
  }
  while (!relax_queue.empty()) {
    const std::int64_t u = relax_queue.front();
    relax_queue.pop_front();
    for (const Neighbor& nb : adjacency_[u]) relax(u, nb.node);
  }

  // Phase 3: seed the dirty set — geodesic changes (plus their former and
  // current children) and new geodesic-crossing edges.
  std::vector<std::int64_t> dirty;
  for (const auto& [changed, old_g] : old_geodesic) {
    dirty.push_back(changed);
    for (const Neighbor& nb : adjacency_[changed]) {
      if ((old_g != kUnreachable && geodesic_[nb.node] == old_g + 1) ||
          geodesic_[nb.node] == geodesic_[changed] + 1) {
        dirty.push_back(nb.node);
      }
    }
  }
  for (const Edge& e : edges) {
    if (geodesic_[e.u] != kUnreachable &&
        geodesic_[e.v] == geodesic_[e.u] + 1) {
      dirty.push_back(e.v);
    }
    if (geodesic_[e.v] != kUnreachable &&
        geodesic_[e.u] == geodesic_[e.v] + 1) {
      dirty.push_back(e.u);
    }
  }
  PropagateDirty(std::move(dirty));
}

}  // namespace linbp
