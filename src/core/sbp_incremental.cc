#include "src/core/sbp_incremental.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {

namespace {
// Validation rejections on the SbpState mutation paths (SBP warm updates
// never roll back: dirty-region recompute only runs after validation).
void RecordRejection() { LINBP_OBS_COUNTER_ADD("sbp_state_rejections_total", 1); }
}  // namespace

SbpState::SbpState(std::int64_t num_nodes, DenseMatrix hhat,
                   exec::ExecContext exec)
    : adjacency_(num_nodes),
      hhat_(std::move(hhat)),
      beliefs_(num_nodes, hhat_.rows()),
      geodesic_(num_nodes, kUnreachable),
      is_explicit_(num_nodes, false),
      exec_(std::move(exec)) {
  LINBP_CHECK(hhat_.rows() == hhat_.cols() && hhat_.rows() >= 2);
}

SbpState SbpState::FromGraph(const Graph& graph, DenseMatrix hhat,
                             const DenseMatrix& explicit_residuals,
                             const std::vector<std::int64_t>& explicit_nodes,
                             exec::ExecContext exec) {
  SbpState state(graph.num_nodes(), std::move(hhat), std::move(exec));
  for (const Edge& e : graph.edges()) {
    state.adjacency_[e.u].push_back({e.v, e.weight});
    state.adjacency_[e.v].push_back({e.u, e.weight});
  }
  DenseMatrix rows(static_cast<std::int64_t>(explicit_nodes.size()),
                   state.k());
  for (std::size_t i = 0; i < explicit_nodes.size(); ++i) {
    for (std::int64_t c = 0; c < state.k(); ++c) {
      rows.At(static_cast<std::int64_t>(i), c) =
          explicit_residuals.At(explicit_nodes[i], c);
    }
  }
  std::string problem;
  LINBP_CHECK_MSG(state.AddExplicitBeliefs(explicit_nodes, rows, &problem) >=
                      0,
                  "FromGraph bootstrap rejected its explicit beliefs");
  return state;
}

std::string SbpState::ValidateEdgeBatch(const std::vector<Edge>& edges,
                                        bool require_present,
                                        bool check_weights) const {
  const std::int64_t n = num_nodes();
  std::vector<std::pair<std::int64_t, std::int64_t>> keys;
  keys.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n) {
      return "edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
             ") has an endpoint outside [0, " + std::to_string(n) + ")";
    }
    if (e.u == e.v) {
      return "self-loop on node " + std::to_string(e.u) +
             " is not supported";
    }
    if (check_weights && !std::isfinite(e.weight)) {
      return "edge (" + std::to_string(e.u) + ", " + std::to_string(e.v) +
             ") has a non-finite weight";
    }
    const std::int64_t u = std::min(e.u, e.v);
    const std::int64_t v = std::max(e.u, e.v);
    bool present = false;
    for (const Neighbor& nb : adjacency_[u]) {
      if (nb.node == v) {
        present = true;
        break;
      }
    }
    if (present && !require_present) {
      return "edge (" + std::to_string(u) + ", " + std::to_string(v) +
             ") already exists in the graph";
    }
    if (!present && require_present) {
      return "edge (" + std::to_string(u) + ", " + std::to_string(v) +
             ") does not exist in the graph";
    }
    keys.emplace_back(u, v);
  }
  std::sort(keys.begin(), keys.end());
  const auto dup = std::adjacent_find(keys.begin(), keys.end());
  if (dup != keys.end()) {
    return "duplicate edge (" + std::to_string(dup->first) + ", " +
           std::to_string(dup->second) + ") in the batch";
  }
  return std::string();
}

void SbpState::RecomputeBeliefs(std::int64_t t) {
  const std::int64_t num_classes = k();
  std::vector<double> aggregated(num_classes, 0.0);
  for (const Neighbor& nb : adjacency_[t]) {
    if (geodesic_[nb.node] != geodesic_[t] - 1) continue;
    for (std::int64_t c = 0; c < num_classes; ++c) {
      aggregated[c] += nb.weight * beliefs_.At(nb.node, c);
    }
  }
  for (std::int64_t c = 0; c < num_classes; ++c) {
    double value = 0.0;
    for (std::int64_t j = 0; j < num_classes; ++j) {
      value += aggregated[j] * hhat_.At(j, c);
    }
    beliefs_.At(t, c) = value;
  }
}

void SbpState::PropagateDirty(std::vector<std::int64_t> dirty) {
  // Bucket by geodesic level; process ascending so parents are final when a
  // child is recomputed. Cascades only ever target level g + 1, so once a
  // level starts its bucket is complete: the recompute phase can fan out
  // (each node reads level g - 1 and writes its own belief row), and only
  // the child-enqueue scan stays serial.
  std::vector<std::vector<std::int64_t>> buckets;
  std::vector<bool> marked(num_nodes(), false);
  auto enqueue = [&](std::int64_t node) {
    if (marked[node] || is_explicit_[node]) return;
    const std::int64_t g = geodesic_[node];
    if (g == kUnreachable) return;
    if (static_cast<std::int64_t>(buckets.size()) <= g) buckets.resize(g + 1);
    buckets[g].push_back(node);
    marked[node] = true;
  };
  for (const std::int64_t node : dirty) enqueue(node);
  for (std::size_t level = 1; level < buckets.size(); ++level) {
    // buckets may grow (at higher levels) while iterating; index-based
    // access throughout instead of holding references.
    exec_.ParallelFor(
        0, static_cast<std::int64_t>(buckets[level].size()), /*min_grain=*/64,
        [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) {
            RecomputeBeliefs(buckets[level][i]);
          }
        });
    last_update_recomputed_nodes_ +=
        static_cast<std::int64_t>(buckets[level].size());
    for (std::size_t i = 0; i < buckets[level].size(); ++i) {
      const std::int64_t t = buckets[level][i];
      for (const Neighbor& nb : adjacency_[t]) {
        if (geodesic_[nb.node] == geodesic_[t] + 1) enqueue(nb.node);
      }
    }
  }
}

int SbpState::AddExplicitBeliefs(const std::vector<std::int64_t>& nodes,
                                 const DenseMatrix& residuals,
                                 std::string* error) {
  // Validate up front with error returns: node ids and residuals arrive
  // straight off an update stream, and a hostile line must never abort
  // the server or touch the state.
  if (static_cast<std::int64_t>(nodes.size()) != residuals.rows()) {
    if (error != nullptr) {
      *error = "belief update names " + std::to_string(nodes.size()) +
               " nodes but carries " + std::to_string(residuals.rows()) +
               " residual rows";
    }
    RecordRejection();
    return -1;
  }
  if (residuals.cols() != k()) {
    if (error != nullptr) {
      *error = "belief update has " + std::to_string(residuals.cols()) +
               " classes but the coupling has " + std::to_string(k());
    }
    RecordRejection();
    return -1;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] < 0 || nodes[i] >= num_nodes()) {
      if (error != nullptr) {
        *error = "belief update names node " + std::to_string(nodes[i]) +
                 " outside [0, " + std::to_string(num_nodes()) + ")";
      }
      RecordRejection();
      return -1;
    }
    for (std::int64_t c = 0; c < k(); ++c) {
      if (!std::isfinite(residuals.At(static_cast<std::int64_t>(i), c))) {
        if (error != nullptr) {
          *error = "belief update for node " + std::to_string(nodes[i]) +
                   " has a non-finite residual";
        }
        RecordRejection();
        return -1;
      }
    }
  }
  last_update_recomputed_nodes_ = 0;

  // Phase 1: install the new explicit beliefs and geodesic number 0.
  std::unordered_map<std::int64_t, std::int64_t> old_geodesic;
  std::deque<std::int64_t> relax_queue;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::int64_t v = nodes[i];
    if (!is_explicit_[v]) {
      is_explicit_[v] = true;
      explicit_nodes_.push_back(v);
      old_geodesic.emplace(v, geodesic_[v]);
      geodesic_[v] = 0;
      relax_queue.push_back(v);
    }
    for (std::int64_t c = 0; c < k(); ++c) {
      beliefs_.At(v, c) = residuals.At(static_cast<std::int64_t>(i), c);
    }
  }

  // Phase 2: BFS relaxation of geodesic numbers (they can only decrease).
  while (!relax_queue.empty()) {
    const std::int64_t u = relax_queue.front();
    relax_queue.pop_front();
    for (const Neighbor& nb : adjacency_[u]) {
      if (geodesic_[nb.node] == kUnreachable ||
          geodesic_[nb.node] > geodesic_[u] + 1) {
        old_geodesic.emplace(nb.node, geodesic_[nb.node]);
        geodesic_[nb.node] = geodesic_[u] + 1;
        relax_queue.push_back(nb.node);
      }
    }
  }

  // Phase 3: seed the dirty set.
  std::vector<std::int64_t> dirty;
  for (const auto& [changed, old_g] : old_geodesic) {
    dirty.push_back(changed);  // enqueue skips explicit nodes itself
    for (const Neighbor& nb : adjacency_[changed]) {
      // Former children lost a parent; new children gained one.
      if ((old_g != kUnreachable && geodesic_[nb.node] == old_g + 1) ||
          geodesic_[nb.node] == geodesic_[changed] + 1) {
        dirty.push_back(nb.node);
      }
    }
  }
  // Overwritten explicit beliefs (geodesic unchanged) still dirty their
  // children.
  for (const std::int64_t v : nodes) {
    for (const Neighbor& nb : adjacency_[v]) {
      if (geodesic_[nb.node] == 1) dirty.push_back(nb.node);
    }
  }
  PropagateDirty(std::move(dirty));
  return static_cast<int>(last_update_recomputed_nodes_);
}

int SbpState::AddEdges(const std::vector<Edge>& edges, std::string* error) {
  const std::string problem =
      ValidateEdgeBatch(edges, /*require_present=*/false,
                        /*check_weights=*/true);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    RecordRejection();
    return -1;
  }
  last_update_recomputed_nodes_ = 0;

  // Phase 1: extend the adjacency lists.
  for (const Edge& e : edges) {
    adjacency_[e.u].push_back({e.v, e.weight});
    adjacency_[e.v].push_back({e.u, e.weight});
  }

  // Phase 2: relax geodesic numbers across the new edges, then outward.
  std::unordered_map<std::int64_t, std::int64_t> old_geodesic;
  std::deque<std::int64_t> relax_queue;
  auto relax = [&](std::int64_t from, std::int64_t to) {
    if (geodesic_[from] == kUnreachable) return;
    const std::int64_t candidate = geodesic_[from] + 1;
    if (geodesic_[to] == kUnreachable || geodesic_[to] > candidate) {
      old_geodesic.emplace(to, geodesic_[to]);
      geodesic_[to] = candidate;
      relax_queue.push_back(to);
    }
  };
  for (const Edge& e : edges) {
    relax(e.u, e.v);
    relax(e.v, e.u);
  }
  while (!relax_queue.empty()) {
    const std::int64_t u = relax_queue.front();
    relax_queue.pop_front();
    for (const Neighbor& nb : adjacency_[u]) relax(u, nb.node);
  }

  // Phase 3: seed the dirty set — geodesic changes (plus their former and
  // current children) and new geodesic-crossing edges.
  std::vector<std::int64_t> dirty;
  for (const auto& [changed, old_g] : old_geodesic) {
    dirty.push_back(changed);
    for (const Neighbor& nb : adjacency_[changed]) {
      if ((old_g != kUnreachable && geodesic_[nb.node] == old_g + 1) ||
          geodesic_[nb.node] == geodesic_[changed] + 1) {
        dirty.push_back(nb.node);
      }
    }
  }
  for (const Edge& e : edges) {
    if (geodesic_[e.u] != kUnreachable &&
        geodesic_[e.v] == geodesic_[e.u] + 1) {
      dirty.push_back(e.v);
    }
    if (geodesic_[e.v] != kUnreachable &&
        geodesic_[e.u] == geodesic_[e.v] + 1) {
      dirty.push_back(e.u);
    }
  }
  PropagateDirty(std::move(dirty));
  return static_cast<int>(last_update_recomputed_nodes_);
}

int SbpState::RemoveEdges(const std::vector<Edge>& edges,
                          std::string* error) {
  const std::string problem =
      ValidateEdgeBatch(edges, /*require_present=*/true,
                        /*check_weights=*/false);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    RecordRejection();
    return -1;
  }
  last_update_recomputed_nodes_ = 0;

  // Phase 1: drop the edges from both adjacency lists.
  for (const Edge& e : edges) {
    auto drop = [this](std::int64_t from, std::int64_t to) {
      auto& list = adjacency_[from];
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i].node == to) {
          list[i] = list.back();
          list.pop_back();
          return;
        }
      }
    };
    drop(e.u, e.v);
    drop(e.v, e.u);
  }

  // Phase 2: geodesic numbers can only grow under deletions, and a
  // decremental relaxation would have to discover *which* nodes lost
  // their last shortest path — a full multi-source BFS from the explicit
  // nodes is simpler and always right. Deletions are expected to be rare
  // relative to queries; the belief recomputation below stays localized.
  std::vector<std::int64_t> old_geodesic = geodesic_;
  std::fill(geodesic_.begin(), geodesic_.end(), kUnreachable);
  std::deque<std::int64_t> bfs;
  for (const std::int64_t v : explicit_nodes_) {
    geodesic_[v] = 0;
    bfs.push_back(v);
  }
  while (!bfs.empty()) {
    const std::int64_t u = bfs.front();
    bfs.pop_front();
    for (const Neighbor& nb : adjacency_[u]) {
      if (geodesic_[nb.node] == kUnreachable) {
        geodesic_[nb.node] = geodesic_[u] + 1;
        bfs.push_back(nb.node);
      }
    }
  }

  // Phase 3: seed the dirty set. A node whose geodesic changed must be
  // recomputed at its new level (or zeroed if now unreachable, the
  // from-scratch convention for unlabeled components); its former
  // children lost a parent and its current children gained one. A
  // removed level-crossing edge dirties the child endpoint even when no
  // geodesic moved (it lost that parent's contribution).
  std::vector<std::int64_t> dirty;
  for (std::int64_t v = 0; v < num_nodes(); ++v) {
    if (geodesic_[v] == old_geodesic[v]) continue;
    if (geodesic_[v] == kUnreachable) {
      for (std::int64_t c = 0; c < k(); ++c) beliefs_.At(v, c) = 0.0;
      ++last_update_recomputed_nodes_;
    } else {
      dirty.push_back(v);
    }
    for (const Neighbor& nb : adjacency_[v]) {
      if ((old_geodesic[v] != kUnreachable &&
           old_geodesic[nb.node] == old_geodesic[v] + 1) ||
          (geodesic_[v] != kUnreachable &&
           geodesic_[nb.node] == geodesic_[v] + 1)) {
        dirty.push_back(nb.node);
      }
    }
  }
  for (const Edge& e : edges) {
    if (old_geodesic[e.u] != kUnreachable &&
        old_geodesic[e.v] == old_geodesic[e.u] + 1) {
      dirty.push_back(e.v);
    }
    if (old_geodesic[e.v] != kUnreachable &&
        old_geodesic[e.u] == old_geodesic[e.v] + 1) {
      dirty.push_back(e.u);
    }
  }
  PropagateDirty(std::move(dirty));
  return static_cast<int>(last_update_recomputed_nodes_);
}

int SbpState::UpdateEdgeWeights(const std::vector<Edge>& edges,
                                std::string* error) {
  const std::string problem =
      ValidateEdgeBatch(edges, /*require_present=*/true,
                        /*check_weights=*/true);
  if (!problem.empty()) {
    if (error != nullptr) *error = problem;
    RecordRejection();
    return -1;
  }
  last_update_recomputed_nodes_ = 0;

  // Weights do not move geodesic numbers (SBP shortest paths count
  // hops), so only beliefs flowing across a reweighted level-crossing
  // edge change: dirty the child endpoint and let the cascade handle
  // its descendants.
  std::vector<std::int64_t> dirty;
  for (const Edge& e : edges) {
    auto reweight = [this](std::int64_t from, std::int64_t to, double w) {
      for (Neighbor& nb : adjacency_[from]) {
        if (nb.node == to) {
          nb.weight = w;
          return;
        }
      }
    };
    reweight(e.u, e.v, e.weight);
    reweight(e.v, e.u, e.weight);
    if (geodesic_[e.u] != kUnreachable &&
        geodesic_[e.v] == geodesic_[e.u] + 1) {
      dirty.push_back(e.v);
    }
    if (geodesic_[e.v] != kUnreachable &&
        geodesic_[e.u] == geodesic_[e.v] + 1) {
      dirty.push_back(e.u);
    }
  }
  PropagateDirty(std::move(dirty));
  return static_cast<int>(last_update_recomputed_nodes_);
}

}  // namespace linbp
