#include "src/core/fabp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/engine/in_memory_backend.h"
#include "src/la/kron_ops.h"
#include "src/la/solvers.h"
#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace linbp {
namespace {

// y = c1 * A x - c2 * D x, the FaBP propagation operator over any
// backend. Throws engine::StreamError on a backend failure (JacobiSolve
// has no error channel); RunFabp converts it back into an error return.
class FabpOperator final : public LinearOperator {
 public:
  FabpOperator(const engine::PropagationBackend* backend, double c1,
               double c2, const exec::ExecContext* ctx)
      : backend_(backend), c1_(c1), c2_(c2), ctx_(ctx) {}
  std::int64_t dim() const override { return backend_->num_nodes(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    std::string error;
    if (!backend_->MultiplyVector(x, *ctx_, y, &error)) {
      throw engine::StreamError(error);
    }
    const std::vector<double>& degrees = backend_->weighted_degrees();
    double* out = y->data();
    ctx_->ParallelFor(0, dim(), exec::kDefaultMinWorkPerChunk,
                      [&](std::int64_t begin, std::int64_t end) {
                        for (std::int64_t s = begin; s < end; ++s) {
                          out[s] = c1_ * out[s] - c2_ * degrees[s] * x[s];
                        }
                      });
  }

 private:
  const engine::PropagationBackend* backend_;  // not owned
  double c1_;
  double c2_;
  const exec::ExecContext* ctx_;  // not owned
};

// Mirrors the helper in linbp.cc: per-iteration deltas of this counter
// give the shard bytes a streamed backend read (0 for in-memory).
std::int64_t StreamBytesCounterValue() {
#ifndef LINBP_OBS_DISABLED
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("shard_stream_bytes_read_total");
  return counter.Value();
#else
  return 0;
#endif
}

// Consecutive rising-delta iterations JacobiSolve tolerates before its
// divergence abort (matches LinBpOptions::divergence_patience's default).
constexpr int kFabpDivergencePatience = 5;

// The f32-storage twin of la JacobiSolve specialized to the FaBP
// operator: the iterate lives in a float vector and the SpMV runs the
// backend's f32 kernel, while the per-element update (c1 * (Ax)_s -
// c2 * d_s * y_s, then + x_s) and the delta reduction accumulate in
// fp64 with one rounding per stored element. Stopping and divergence
// logic mirror JacobiSolve exactly. Throws engine::StreamError on a
// backend failure, like FabpOperator::Apply.
JacobiResult JacobiSolveFabpF32(const engine::PropagationBackend& backend,
                                double c1, double c2,
                                const std::vector<double>& x,
                                int max_iterations, double tolerance,
                                const JacobiIterationObserver& observer,
                                int divergence_patience,
                                const exec::ExecContext& ctx) {
  const std::int64_t n = backend.num_nodes();
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == n);
  const std::vector<double>& degrees = backend.weighted_degrees();
  JacobiResult result;
  std::vector<float> y(n, 0.0f);
  std::vector<float> ax;
  std::vector<double> deltas;
  if (divergence_patience > 0) deltas.reserve(max_iterations);
  int growth_streak = 0;
  for (int it = 1; it <= max_iterations; ++it) {
    WallTimer iteration_timer;
    std::string error;
    if (!backend.MultiplyVectorF32(y, ctx, &ax, &error)) {
      throw engine::StreamError(error);
    }
    double delta = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const double propagated = c1 * static_cast<double>(ax[s]) -
                                c2 * degrees[s] * static_cast<double>(y[s]);
      const float next = static_cast<float>(x[s] + propagated);
      delta = std::max(delta, std::abs(static_cast<double>(next) -
                                       static_cast<double>(y[s])));
      y[s] = next;
    }
    result.iterations = it;
    if (divergence_patience > 0) {
      growth_streak =
          delta > result.last_delta && it > 1 ? growth_streak + 1 : 0;
      deltas.push_back(delta);
    }
    result.last_delta = delta;
    if (observer) observer(it, delta, iteration_timer.Seconds());
    if (delta <= tolerance) {
      result.converged = true;
      break;
    }
    if (divergence_patience > 0 && growth_streak >= divergence_patience &&
        delta > deltas.front() && FitContractionRate(deltas) > 1.0) {
      result.diverged = true;
      break;
    }
  }
  result.solution.assign(y.begin(), y.end());
  return result;
}

}  // namespace

FabpResult RunFabp(const engine::PropagationBackend& backend, double h,
                   const std::vector<double>& explicit_residuals,
                   const FabpOptions& options) {
  const int max_iterations = options.max_iterations;
  const double tolerance = options.tolerance;
  const exec::ExecContext& exec = options.exec;
  const SweepObserver& observer = options.observer;
  LINBP_CHECK(static_cast<std::int64_t>(explicit_residuals.size()) ==
              backend.num_nodes());
  LINBP_CHECK_MSG(std::abs(h) < 0.5, "|h| must be < 1/2");
  const double denom = 1.0 - 4.0 * h * h;
  const double c1 = 2.0 * h / denom;
  const double c2 = 4.0 * h * h / denom;
  const FabpOperator op(&backend, c1, c2, &exec);
  FabpResult result;
  // Bridge each Jacobi iteration into the shared sweep telemetry path
  // (registry series fabp_*, the "fabp_sweep" time series; magnitude and
  // delta_l2 are not tracked by JacobiSolve, so they report as 0). The
  // deltas double as the input of the convergence-diagnostics fit.
  const std::int64_t rows = backend.num_nodes();
  const std::int64_t nnz = backend.num_stored_entries();
  std::vector<double> deltas;
  deltas.reserve(std::max(max_iterations, 0));
  std::int64_t last_bytes = StreamBytesCounterValue();
  double prev_delta = 0.0;
  const JacobiIterationObserver iteration_observer =
      [&](int it, double delta, double seconds) {
        LINBP_OBS_COUNTER_ADD("fabp_sweeps_total", 1);
        LINBP_OBS_COUNTER_ADD("fabp_rows_processed_total", rows);
        LINBP_OBS_COUNTER_ADD("fabp_nnz_processed_total", nnz);
        LINBP_OBS_HISTOGRAM_OBSERVE("fabp_sweep_seconds", seconds);
        const std::int64_t bytes_now = StreamBytesCounterValue();
        {
          obs::TimeSeriesSample sample;
          sample.sweep = it;
          sample.delta = delta;
          sample.seconds = seconds;
          sample.bytes_streamed = bytes_now - last_bytes;
          sample.precision = PrecisionName(options.precision);
          LINBP_OBS_TIMESERIES_APPEND("fabp_sweep", sample);
        }
        deltas.push_back(delta);
        if (observer) {
          SweepTelemetry telemetry;
          telemetry.sweep = it;
          telemetry.delta = delta;
          telemetry.seconds = seconds;
          telemetry.contraction =
              it > 1 && prev_delta > 0.0 ? delta / prev_delta : 0.0;
          telemetry.rows = rows;
          telemetry.nnz = nnz;
          telemetry.bytes_streamed = bytes_now - last_bytes;
          telemetry.precision = options.precision;
          observer(telemetry);
        }
        last_bytes = bytes_now;
        prev_delta = delta;
      };
  try {
    obs::ScopedSpan span("fabp_solve");
    LINBP_OBS_TIMESERIES_BEGIN_RUN("fabp_sweep");
    const JacobiResult jacobi =
        options.precision == Precision::kF32
            ? JacobiSolveFabpF32(backend, c1, c2, explicit_residuals,
                                 max_iterations, tolerance,
                                 iteration_observer, kFabpDivergencePatience,
                                 exec)
            : JacobiSolve(op, explicit_residuals, max_iterations, tolerance,
                          iteration_observer, kFabpDivergencePatience);
    if (span.active()) {
      span.SetAttr("iterations", jacobi.iterations);
      span.SetAttr("delta", jacobi.last_delta);
      span.SetAttr("rows", rows);
      span.SetAttr("nnz", nnz);
      span.SetAttr("precision", PrecisionName(options.precision));
    }
    result.beliefs = jacobi.solution;
    result.iterations = jacobi.iterations;
    result.converged = jacobi.converged;
    result.diagnostics.empirical_contraction = FitContractionRate(deltas);
    {
      const int window = 16;
      const std::size_t begin =
          deltas.size() > static_cast<std::size_t>(window)
              ? deltas.size() - static_cast<std::size_t>(window)
              : 0;
      for (std::size_t i = begin; i < deltas.size(); ++i) {
        if (std::isfinite(deltas[i]) && deltas[i] > 0.0) {
          ++result.diagnostics.fitted_sweeps;
        }
      }
    }
    const double rho = result.diagnostics.empirical_contraction;
    if (jacobi.converged) {
      result.diagnostics.predicted_sweeps_to_tolerance = 0.0;
    } else if (rho > 0.0 && rho < 1.0 && tolerance > 0.0 &&
               jacobi.last_delta > tolerance) {
      result.diagnostics.predicted_sweeps_to_tolerance = std::ceil(
          std::log(tolerance / jacobi.last_delta) / std::log(rho));
    }
    if (jacobi.diverged) {
      // rho(c1 A - c2 D) >= 1: report with the exact spectral estimate
      // when the backend survives the extra products.
      try {
        const PowerIterationResult power = PowerIteration(op);
        result.diagnostics.spectral_radius_estimate = power.spectral_radius;
      } catch (const engine::StreamError&) {
        // Estimate unavailable; the fit still carries the diagnosis.
      }
      result.diverged = true;
      result.failed = true;
      char spectral[64];
      if (result.diagnostics.spectral_radius_estimate >= 0.0) {
        std::snprintf(spectral, sizeof(spectral), "%.6g",
                      result.diagnostics.spectral_radius_estimate);
      } else {
        std::snprintf(spectral, sizeof(spectral), "unavailable");
      }
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer),
                    "diverging: residual delta rose for %d consecutive "
                    "sweeps (completed %d sweeps, rho_hat=%.6g, spectral "
                    "radius estimate=%s)",
                    kFabpDivergencePatience, jacobi.iterations, rho,
                    spectral);
      result.error = buffer;
    }
  } catch (const engine::StreamError& stream_error) {
    result.failed = true;
    result.error = stream_error.what();
  }
  return result;
}

FabpResult RunFabp(const Graph& graph, double h,
                   const std::vector<double>& explicit_residuals,
                   const FabpOptions& options) {
  const engine::InMemoryBackend backend(&graph);
  return RunFabp(backend, h, explicit_residuals, options);
}

FabpResult RunFabp(const engine::PropagationBackend& backend, double h,
                   const std::vector<double>& explicit_residuals,
                   int max_iterations, double tolerance,
                   const exec::ExecContext& exec,
                   const SweepObserver& observer) {
  FabpOptions options;
  options.max_iterations = max_iterations;
  options.tolerance = tolerance;
  options.exec = exec;
  options.observer = observer;
  return RunFabp(backend, h, explicit_residuals, options);
}

FabpResult RunFabp(const Graph& graph, double h,
                   const std::vector<double>& explicit_residuals,
                   int max_iterations, double tolerance,
                   const exec::ExecContext& exec,
                   const SweepObserver& observer) {
  const engine::InMemoryBackend backend(&graph);
  return RunFabp(backend, h, explicit_residuals, max_iterations, tolerance,
                 exec, observer);
}

}  // namespace linbp
