#include "src/core/fabp.h"

#include <cmath>

#include "src/engine/in_memory_backend.h"
#include "src/la/kron_ops.h"
#include "src/la/solvers.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {
namespace {

// y = c1 * A x - c2 * D x, the FaBP propagation operator over any
// backend. Throws engine::StreamError on a backend failure (JacobiSolve
// has no error channel); RunFabp converts it back into an error return.
class FabpOperator final : public LinearOperator {
 public:
  FabpOperator(const engine::PropagationBackend* backend, double c1,
               double c2, const exec::ExecContext* ctx)
      : backend_(backend), c1_(c1), c2_(c2), ctx_(ctx) {}
  std::int64_t dim() const override { return backend_->num_nodes(); }
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override {
    std::string error;
    if (!backend_->MultiplyVector(x, *ctx_, y, &error)) {
      throw engine::StreamError(error);
    }
    const std::vector<double>& degrees = backend_->weighted_degrees();
    double* out = y->data();
    ctx_->ParallelFor(0, dim(), exec::kDefaultMinWorkPerChunk,
                      [&](std::int64_t begin, std::int64_t end) {
                        for (std::int64_t s = begin; s < end; ++s) {
                          out[s] = c1_ * out[s] - c2_ * degrees[s] * x[s];
                        }
                      });
  }

 private:
  const engine::PropagationBackend* backend_;  // not owned
  double c1_;
  double c2_;
  const exec::ExecContext* ctx_;  // not owned
};

}  // namespace

FabpResult RunFabp(const engine::PropagationBackend& backend, double h,
                   const std::vector<double>& explicit_residuals,
                   int max_iterations, double tolerance,
                   const exec::ExecContext& exec,
                   const SweepObserver& observer) {
  LINBP_CHECK(static_cast<std::int64_t>(explicit_residuals.size()) ==
              backend.num_nodes());
  LINBP_CHECK_MSG(std::abs(h) < 0.5, "|h| must be < 1/2");
  const double denom = 1.0 - 4.0 * h * h;
  const FabpOperator op(&backend, 2.0 * h / denom, 4.0 * h * h / denom,
                        &exec);
  FabpResult result;
  // Bridge each Jacobi iteration into the shared sweep telemetry path
  // (registry series fabp_*; magnitude is not tracked by JacobiSolve, so
  // it reports as 0).
  const std::int64_t rows = backend.num_nodes();
  const std::int64_t nnz = backend.num_stored_entries();
  const JacobiIterationObserver iteration_observer =
      [&](int it, double delta, double seconds) {
        LINBP_OBS_COUNTER_ADD("fabp_sweeps_total", 1);
        LINBP_OBS_COUNTER_ADD("fabp_rows_processed_total", rows);
        LINBP_OBS_COUNTER_ADD("fabp_nnz_processed_total", nnz);
        LINBP_OBS_HISTOGRAM_OBSERVE("fabp_sweep_seconds", seconds);
        if (observer) {
          SweepTelemetry telemetry;
          telemetry.sweep = it;
          telemetry.delta = delta;
          telemetry.seconds = seconds;
          telemetry.rows = rows;
          telemetry.nnz = nnz;
          observer(telemetry);
        }
      };
  try {
    obs::ScopedSpan span("fabp_solve");
    const JacobiResult jacobi = JacobiSolve(op, explicit_residuals,
                                            max_iterations, tolerance,
                                            iteration_observer);
    if (span.active()) {
      span.SetAttr("iterations", jacobi.iterations);
      span.SetAttr("delta", jacobi.last_delta);
      span.SetAttr("rows", rows);
      span.SetAttr("nnz", nnz);
    }
    result.beliefs = jacobi.solution;
    result.iterations = jacobi.iterations;
    result.converged = jacobi.converged;
  } catch (const engine::StreamError& stream_error) {
    result.failed = true;
    result.error = stream_error.what();
  }
  return result;
}

FabpResult RunFabp(const Graph& graph, double h,
                   const std::vector<double>& explicit_residuals,
                   int max_iterations, double tolerance,
                   const exec::ExecContext& exec,
                   const SweepObserver& observer) {
  const engine::InMemoryBackend backend(&graph);
  return RunFabp(backend, h, explicit_residuals, max_iterations, tolerance,
                 exec, observer);
}

}  // namespace linbp
