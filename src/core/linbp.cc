#include "src/core/linbp.h"

#include <cmath>

#include "src/la/dense_linalg.h"
#include "src/la/kron_ops.h"
#include "src/util/check.h"

namespace linbp {

DenseMatrix ExactModulation(const DenseMatrix& hhat) {
  LINBP_CHECK(hhat.rows() == hhat.cols());
  const DenseMatrix lhs =
      DenseMatrix::Identity(hhat.rows()).Sub(hhat.Multiply(hhat));
  const auto inverse = Inverse(lhs);
  LINBP_CHECK_MSG(inverse.has_value(), "I - Hhat^2 is singular");
  return inverse->Multiply(hhat);
}

LinBpResult RunLinBp(const Graph& graph, const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options) {
  const std::int64_t n = graph.num_nodes();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(hhat.cols() == k && k >= 2);
  LINBP_CHECK(explicit_residuals.rows() == n &&
              explicit_residuals.cols() == k);

  // Pick the modulation matrices for the requested variant. For kLinBpExact
  // the per-edge modulation is Hhat* and the echo term uses Hhat * Hhat*
  // (Eq. 29); for kLinBp both collapse to Hhat and Hhat^2 (Theorem 4).
  DenseMatrix modulation = hhat;
  if (options.variant == LinBpVariant::kLinBpExact) {
    modulation = ExactModulation(hhat);
  }
  const DenseMatrix echo_modulation = hhat.Multiply(modulation);
  const bool with_echo = options.variant != LinBpVariant::kLinBpStar;

  LinBpResult result;
  result.beliefs = explicit_residuals;
  const std::vector<double>& degrees = graph.weighted_degrees();
  for (int it = 1; it <= options.max_iterations; ++it) {
    DenseMatrix next = LinBpPropagate(graph.adjacency(), degrees, modulation,
                                      echo_modulation, result.beliefs,
                                      with_echo);
    double delta = 0.0;
    double magnitude = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      for (std::int64_t c = 0; c < k; ++c) {
        const double value = explicit_residuals.At(s, c) + next.At(s, c);
        delta = std::max(delta, std::abs(value - result.beliefs.At(s, c)));
        magnitude = std::max(magnitude, std::abs(value));
        result.beliefs.At(s, c) = value;
      }
    }
    result.iterations = it;
    result.last_delta = delta;
    if (!std::isfinite(delta) || magnitude > options.divergence_threshold) {
      result.diverged = true;
      break;
    }
    if (delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace linbp
