#include "src/core/linbp.h"

#include <algorithm>
#include <cmath>

#include "src/engine/backend_ops.h"
#include "src/engine/in_memory_backend.h"
#include "src/la/dense_linalg.h"
#include "src/la/kron_ops.h"
#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace linbp {

DenseMatrix ExactModulation(const DenseMatrix& hhat) {
  LINBP_CHECK(hhat.rows() == hhat.cols());
  const DenseMatrix lhs =
      DenseMatrix::Identity(hhat.rows()).Sub(hhat.Multiply(hhat));
  const auto inverse = Inverse(lhs);
  LINBP_CHECK_MSG(inverse.has_value(), "I - Hhat^2 is singular");
  return inverse->Multiply(hhat);
}

namespace core_internal {

void ReportSweep(int sweep, double delta, double magnitude, double seconds,
                 std::int64_t rows, std::int64_t nnz,
                 const SweepObserver& observer, obs::ScopedSpan* span) {
  LINBP_OBS_COUNTER_ADD("linbp_sweeps_total", 1);
  LINBP_OBS_COUNTER_ADD("linbp_rows_processed_total", rows);
  LINBP_OBS_COUNTER_ADD("linbp_nnz_processed_total", nnz);
  LINBP_OBS_HISTOGRAM_OBSERVE("linbp_sweep_seconds", seconds);
  if (span != nullptr && span->active()) {
    span->SetAttr("sweep", sweep);
    span->SetAttr("delta", delta);
    span->SetAttr("max_magnitude", magnitude);
    span->SetAttr("rows", rows);
    span->SetAttr("nnz", nnz);
  }
  if (observer) {
    SweepTelemetry telemetry;
    telemetry.sweep = sweep;
    telemetry.delta = delta;
    telemetry.max_magnitude = magnitude;
    telemetry.seconds = seconds;
    telemetry.rows = rows;
    telemetry.nnz = nnz;
    observer(telemetry);
  }
}

}  // namespace core_internal

LinBpSweepStats ApplyLinBpSweep(const exec::ExecContext& ctx,
                                const DenseMatrix& explicit_residuals,
                                const DenseMatrix& propagated,
                                DenseMatrix* beliefs) {
  const std::int64_t n = beliefs->rows();
  const std::int64_t k = beliefs->cols();
  LINBP_CHECK(explicit_residuals.rows() == n && explicit_residuals.cols() == k);
  LINBP_CHECK(propagated.rows() == n && propagated.cols() == k);
  const std::int64_t chunks = std::min<std::int64_t>(
      std::max<std::int64_t>(n, 1),
      ctx.NumChunks(n * k, exec::kDefaultMinWorkPerChunk));
  std::vector<double> chunk_delta(chunks, 0.0);
  std::vector<double> chunk_magnitude(chunks, 0.0);
  ctx.RunChunks(n, chunks, [&](std::int64_t chunk, std::int64_t row_begin,
                               std::int64_t row_end) {
    double local_delta = 0.0;
    double local_magnitude = 0.0;
    for (std::int64_t s = row_begin; s < row_end; ++s) {
      for (std::int64_t c = 0; c < k; ++c) {
        const double value = explicit_residuals.At(s, c) + propagated.At(s, c);
        local_delta =
            std::max(local_delta, std::abs(value - beliefs->At(s, c)));
        local_magnitude = std::max(local_magnitude, std::abs(value));
        beliefs->At(s, c) = value;
      }
    }
    chunk_delta[chunk] = local_delta;
    chunk_magnitude[chunk] = local_magnitude;
  });
  LinBpSweepStats stats;
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    stats.delta = std::max(stats.delta, chunk_delta[chunk]);
    stats.magnitude = std::max(stats.magnitude, chunk_magnitude[chunk]);
  }
  return stats;
}

LinBpResult RunLinBp(const engine::PropagationBackend& backend,
                     const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options) {
  const std::int64_t n = backend.num_nodes();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(hhat.cols() == k && k >= 2);
  LINBP_CHECK(explicit_residuals.rows() == n &&
              explicit_residuals.cols() == k);

  // Pick the modulation matrices for the requested variant. For kLinBpExact
  // the per-edge modulation is Hhat* and the echo term uses Hhat * Hhat*
  // (Eq. 29); for kLinBp both collapse to Hhat and Hhat^2 (Theorem 4).
  DenseMatrix modulation = hhat;
  if (options.variant == LinBpVariant::kLinBpExact) {
    modulation = ExactModulation(hhat);
  }
  const DenseMatrix echo_modulation = hhat.Multiply(modulation);
  const bool with_echo = options.variant != LinBpVariant::kLinBpStar;

  LinBpResult result;
  result.beliefs = explicit_residuals;
  const exec::ExecContext& ctx = options.exec;
  for (int it = 1; it <= options.max_iterations; ++it) {
    obs::ScopedSpan span("linbp_sweep");
    WallTimer sweep_timer;
    DenseMatrix next;
    if (!engine::BackendLinBpPropagate(backend, modulation, echo_modulation,
                                       result.beliefs, with_echo, ctx, &next,
                                       &result.error)) {
      // The failing sweep was never applied: beliefs still hold sweep
      // it - 1, so callers can report the error with their state intact.
      result.failed = true;
      break;
    }
    const LinBpSweepStats stats =
        ApplyLinBpSweep(ctx, explicit_residuals, next, &result.beliefs);
    result.iterations = it;
    result.last_delta = stats.delta;
    core_internal::ReportSweep(it, stats.delta, stats.magnitude,
                               sweep_timer.Seconds(), n,
                               backend.num_stored_entries(),
                               options.sweep_observer, &span);
    if (!std::isfinite(stats.delta) ||
        stats.magnitude > options.divergence_threshold) {
      result.diverged = true;
      break;
    }
    if (stats.delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

LinBpResult RunLinBp(const Graph& graph, const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options) {
  const engine::InMemoryBackend backend(&graph);
  return RunLinBp(backend, hhat, explicit_residuals, options);
}

}  // namespace linbp
