#include "src/core/linbp.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/core/convergence.h"
#include "src/engine/backend_ops.h"
#include "src/engine/in_memory_backend.h"
#include "src/la/dense_linalg.h"
#include "src/la/kron_ops.h"
#include "src/la/solvers.h"
#include "src/obs/obs.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace linbp {

DenseMatrix ExactModulation(const DenseMatrix& hhat) {
  LINBP_CHECK(hhat.rows() == hhat.cols());
  const DenseMatrix lhs =
      DenseMatrix::Identity(hhat.rows()).Sub(hhat.Multiply(hhat));
  const auto inverse = Inverse(lhs);
  LINBP_CHECK_MSG(inverse.has_value(), "I - Hhat^2 is singular");
  return inverse->Multiply(hhat);
}

namespace core_internal {

void ReportSweep(const SweepTelemetry& telemetry, const SweepObserver& observer,
                 obs::ScopedSpan* span) {
  LINBP_OBS_COUNTER_ADD("linbp_sweeps_total", 1);
  LINBP_OBS_COUNTER_ADD("linbp_rows_processed_total", telemetry.rows);
  LINBP_OBS_COUNTER_ADD("linbp_nnz_processed_total", telemetry.nnz);
  LINBP_OBS_HISTOGRAM_OBSERVE("linbp_sweep_seconds", telemetry.seconds);
  {
    obs::TimeSeriesSample sample;
    sample.sweep = telemetry.sweep;
    sample.delta = telemetry.delta;
    sample.delta_l2 = telemetry.delta_l2;
    sample.seconds = telemetry.seconds;
    sample.bytes_streamed = telemetry.bytes_streamed;
    sample.precision = PrecisionName(telemetry.precision);
    LINBP_OBS_TIMESERIES_APPEND("linbp_sweep", sample);
  }
  if (span != nullptr && span->active()) {
    span->SetAttr("sweep", telemetry.sweep);
    span->SetAttr("delta", telemetry.delta);
    span->SetAttr("max_magnitude", telemetry.max_magnitude);
    span->SetAttr("rows", telemetry.rows);
    span->SetAttr("nnz", telemetry.nnz);
    span->SetAttr("precision", PrecisionName(telemetry.precision));
  }
  if (observer) observer(telemetry);
}

namespace {

// Current value of the shard-stream byte counter; per-sweep deltas give
// the bytes a streamed backend read for that sweep (0 for in-memory
// backends, which never touch the counter).
std::int64_t StreamBytesCounterValue() {
#ifndef LINBP_OBS_DISABLED
  static obs::Counter& counter =
      obs::Registry::Global().GetCounter("shard_stream_bytes_read_total");
  return counter.Value();
#else
  return 0;
#endif
}

// rho(M) via power iteration, or -1 when the estimate is unavailable
// (kLinBpExact has no operator form here; streamed backends may fail).
double EstimateSpectralRadius(const engine::PropagationBackend& backend,
                              const DenseMatrix& hhat, LinBpVariant variant,
                              const exec::ExecContext& ctx) {
  if (variant == LinBpVariant::kLinBpExact) return -1.0;
  try {
    return LinBpOperatorSpectralRadius(backend, hhat, variant, 500, 1e-11,
                                       ctx);
  } catch (const std::exception&) {
    return -1.0;
  }
}

// How many deltas FitContractionRate's trailing window actually uses.
int CountFittedDeltas(const std::vector<double>& deltas, int window) {
  const std::size_t begin =
      window > 0 && deltas.size() > static_cast<std::size_t>(window)
          ? deltas.size() - static_cast<std::size_t>(window)
          : 0;
  int n = 0;
  for (std::size_t i = begin; i < deltas.size(); ++i) {
    if (std::isfinite(deltas[i]) && deltas[i] > 0.0) ++n;
  }
  return n;
}

std::string DivergenceAbortError(int sweeps, int streak, double rho_hat,
                                 double spectral_estimate) {
  char spectral[64];
  if (spectral_estimate >= 0.0) {
    std::snprintf(spectral, sizeof(spectral), "%.6g", spectral_estimate);
  } else {
    std::snprintf(spectral, sizeof(spectral), "unavailable");
  }
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "diverging: residual delta rose for %d consecutive sweeps "
                "(completed %d sweeps, rho_hat=%.6g, spectral radius "
                "estimate=%s)",
                streak, sweeps, rho_hat, spectral);
  return buffer;
}

// The f32-storage twin of ApplyLinBpSweep: beliefs <- explicit +
// propagated with every element stored as float, while the sweep
// statistics (delta norms, magnitude) accumulate in fp64 exactly like
// the fp64 sweep. Chunking is identical (it depends only on n*k), so
// the update is bit-identical across thread counts for a fixed context.
LinBpSweepStats ApplyLinBpSweepF32(const exec::ExecContext& ctx,
                                   const DenseMatrixF32& explicit_residuals,
                                   const DenseMatrixF32& propagated,
                                   DenseMatrixF32* beliefs) {
  const std::int64_t n = beliefs->rows();
  const std::int64_t k = beliefs->cols();
  LINBP_CHECK(explicit_residuals.rows() == n && explicit_residuals.cols() == k);
  LINBP_CHECK(propagated.rows() == n && propagated.cols() == k);
  const std::int64_t chunks = std::min<std::int64_t>(
      std::max<std::int64_t>(n, 1),
      ctx.NumChunks(n * k, exec::kDefaultMinWorkPerChunk));
  std::vector<double> chunk_delta(chunks, 0.0);
  std::vector<double> chunk_delta_sq(chunks, 0.0);
  std::vector<double> chunk_magnitude(chunks, 0.0);
  ctx.RunChunks(n, chunks, [&](std::int64_t chunk, std::int64_t row_begin,
                               std::int64_t row_end) {
    double local_delta = 0.0;
    double local_delta_sq = 0.0;
    double local_magnitude = 0.0;
    for (std::int64_t s = row_begin; s < row_end; ++s) {
      for (std::int64_t c = 0; c < k; ++c) {
        const float value =
            explicit_residuals.At(s, c) + propagated.At(s, c);
        const double change = static_cast<double>(value) -
                              static_cast<double>(beliefs->At(s, c));
        local_delta = std::max(local_delta, std::abs(change));
        local_delta_sq += change * change;
        local_magnitude =
            std::max(local_magnitude, std::abs(static_cast<double>(value)));
        beliefs->At(s, c) = value;
      }
    }
    chunk_delta[chunk] = local_delta;
    chunk_delta_sq[chunk] = local_delta_sq;
    chunk_magnitude[chunk] = local_magnitude;
  });
  LinBpSweepStats stats;
  double delta_sq = 0.0;
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    stats.delta = std::max(stats.delta, chunk_delta[chunk]);
    delta_sq += chunk_delta_sq[chunk];
    stats.magnitude = std::max(stats.magnitude, chunk_magnitude[chunk]);
  }
  stats.delta_l2 = std::sqrt(delta_sq);
  return stats;
}

}  // namespace

SweepLoopResult RunSweepLoop(const engine::PropagationBackend& backend,
                             const DenseMatrix& hhat,
                             const DenseMatrix& modulation,
                             const DenseMatrix& echo_modulation, bool with_echo,
                             const DenseMatrix& explicit_residuals,
                             const LinBpOptions& options, double spectral_hint,
                             DenseMatrix* beliefs) {
  const std::int64_t n = backend.num_nodes();
  const exec::ExecContext& ctx = options.exec;
  SweepLoopResult result;
  result.diagnostics.spectral_radius_estimate = spectral_hint;
  if (spectral_hint < 0.0 && options.estimate_spectral_radius) {
    result.diagnostics.spectral_radius_estimate =
        EstimateSpectralRadius(backend, hhat, options.variant, ctx);
  }

  // In f32 mode the working state lives in float matrices for the whole
  // loop (the bandwidth win) and is widened back into *beliefs on every
  // exit path below. A failing sweep is never applied in either mode.
  const bool f32 = options.precision == Precision::kF32;
  DenseMatrixF32 beliefs32;
  DenseMatrixF32 explicit32;
  if (f32) {
    beliefs32 = DenseMatrixF32::FromF64(*beliefs);
    explicit32 = DenseMatrixF32::FromF64(explicit_residuals);
  }

  std::vector<double> deltas;
  deltas.reserve(std::max(options.max_iterations, 0));
  int growth_streak = 0;
  double prev_delta = 0.0;
  LINBP_OBS_TIMESERIES_BEGIN_RUN("linbp_sweep");
  for (int it = 1; it <= options.max_iterations; ++it) {
    obs::ScopedSpan span("linbp_sweep");
    WallTimer sweep_timer;
    const std::int64_t bytes_before = StreamBytesCounterValue();
    LinBpSweepStats stats;
    if (f32) {
      DenseMatrixF32 next32;
      if (!engine::BackendLinBpPropagateF32(backend, modulation,
                                            echo_modulation, beliefs32,
                                            with_echo, ctx, &next32,
                                            &result.error)) {
        result.failed = true;
        break;
      }
      stats = ApplyLinBpSweepF32(ctx, explicit32, next32, &beliefs32);
    } else {
      DenseMatrix next;
      if (!engine::BackendLinBpPropagate(backend, modulation, echo_modulation,
                                         *beliefs, with_echo, ctx, &next,
                                         &result.error)) {
        // The failing sweep was never applied: beliefs still hold sweep
        // it - 1, so callers can report the error with their state
        // intact.
        result.failed = true;
        break;
      }
      stats = ApplyLinBpSweep(ctx, explicit_residuals, next, beliefs);
    }
    result.iterations = it;
    result.last_delta = stats.delta;
    deltas.push_back(stats.delta);

    SweepTelemetry telemetry;
    telemetry.sweep = it;
    telemetry.delta = stats.delta;
    telemetry.delta_l2 = stats.delta_l2;
    telemetry.max_magnitude = stats.magnitude;
    telemetry.seconds = sweep_timer.Seconds();
    telemetry.contraction =
        it > 1 && prev_delta > 0.0 ? stats.delta / prev_delta : 0.0;
    telemetry.rows = n;
    telemetry.nnz = backend.num_stored_entries();
    telemetry.bytes_streamed = StreamBytesCounterValue() - bytes_before;
    telemetry.precision = options.precision;
    ReportSweep(telemetry, options.sweep_observer, &span);

    growth_streak =
        it > 1 && stats.delta > prev_delta ? growth_streak + 1 : 0;
    prev_delta = stats.delta;
    if (!std::isfinite(stats.delta) ||
        stats.magnitude > options.divergence_threshold) {
      result.diverged = true;
      break;
    }
    if (stats.delta <= options.tolerance) {
      result.converged = true;
      break;
    }
    if (options.divergence_patience > 0 &&
        growth_streak >= options.divergence_patience &&
        stats.delta > deltas.front()) {
      const double rho_hat = FitContractionRate(deltas);
      if (rho_hat > 1.0) {
        if (result.diagnostics.spectral_radius_estimate < 0.0) {
          result.diagnostics.spectral_radius_estimate =
              EstimateSpectralRadius(backend, hhat, options.variant, ctx);
        }
        result.diverged = true;
        result.failed = true;
        result.error = DivergenceAbortError(
            it, growth_streak, rho_hat,
            result.diagnostics.spectral_radius_estimate);
        break;
      }
    }
  }

  // Widen the f32 working state back to the caller's fp64 beliefs on
  // every exit (converged, diverged, failed, max_iterations): completed
  // sweeps were computed in f32, so the widening is exact.
  if (f32) *beliefs = beliefs32.ToF64();

  result.diagnostics.empirical_contraction = FitContractionRate(deltas);
  result.diagnostics.fitted_sweeps = CountFittedDeltas(deltas, 16);
  const double rho = result.diagnostics.empirical_contraction;
  if (result.converged) {
    result.diagnostics.predicted_sweeps_to_tolerance = 0.0;
  } else if (rho > 0.0 && rho < 1.0 && options.tolerance > 0.0 &&
             result.last_delta > options.tolerance) {
    result.diagnostics.predicted_sweeps_to_tolerance = std::ceil(
        std::log(options.tolerance / result.last_delta) / std::log(rho));
  }
  return result;
}

}  // namespace core_internal

LinBpSweepStats ApplyLinBpSweep(const exec::ExecContext& ctx,
                                const DenseMatrix& explicit_residuals,
                                const DenseMatrix& propagated,
                                DenseMatrix* beliefs) {
  const std::int64_t n = beliefs->rows();
  const std::int64_t k = beliefs->cols();
  LINBP_CHECK(explicit_residuals.rows() == n && explicit_residuals.cols() == k);
  LINBP_CHECK(propagated.rows() == n && propagated.cols() == k);
  const std::int64_t chunks = std::min<std::int64_t>(
      std::max<std::int64_t>(n, 1),
      ctx.NumChunks(n * k, exec::kDefaultMinWorkPerChunk));
  std::vector<double> chunk_delta(chunks, 0.0);
  std::vector<double> chunk_delta_sq(chunks, 0.0);
  std::vector<double> chunk_magnitude(chunks, 0.0);
  ctx.RunChunks(n, chunks, [&](std::int64_t chunk, std::int64_t row_begin,
                               std::int64_t row_end) {
    double local_delta = 0.0;
    double local_delta_sq = 0.0;
    double local_magnitude = 0.0;
    for (std::int64_t s = row_begin; s < row_end; ++s) {
      for (std::int64_t c = 0; c < k; ++c) {
        const double value = explicit_residuals.At(s, c) + propagated.At(s, c);
        const double change = value - beliefs->At(s, c);
        local_delta = std::max(local_delta, std::abs(change));
        local_delta_sq += change * change;
        local_magnitude = std::max(local_magnitude, std::abs(value));
        beliefs->At(s, c) = value;
      }
    }
    chunk_delta[chunk] = local_delta;
    chunk_delta_sq[chunk] = local_delta_sq;
    chunk_magnitude[chunk] = local_magnitude;
  });
  LinBpSweepStats stats;
  // Sum-of-squares reduces in chunk order so delta_l2 is deterministic
  // for a fixed chunk count (chunking depends only on n*k, not threads).
  double delta_sq = 0.0;
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    stats.delta = std::max(stats.delta, chunk_delta[chunk]);
    delta_sq += chunk_delta_sq[chunk];
    stats.magnitude = std::max(stats.magnitude, chunk_magnitude[chunk]);
  }
  stats.delta_l2 = std::sqrt(delta_sq);
  return stats;
}

LinBpResult RunLinBp(const engine::PropagationBackend& backend,
                     const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options) {
  const std::int64_t n = backend.num_nodes();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(hhat.cols() == k && k >= 2);
  LINBP_CHECK(explicit_residuals.rows() == n &&
              explicit_residuals.cols() == k);

  // Pick the modulation matrices for the requested variant. For kLinBpExact
  // the per-edge modulation is Hhat* and the echo term uses Hhat * Hhat*
  // (Eq. 29); for kLinBp both collapse to Hhat and Hhat^2 (Theorem 4).
  DenseMatrix modulation = hhat;
  if (options.variant == LinBpVariant::kLinBpExact) {
    modulation = ExactModulation(hhat);
  }
  const DenseMatrix echo_modulation = hhat.Multiply(modulation);
  const bool with_echo = options.variant != LinBpVariant::kLinBpStar;

  LinBpResult result;
  result.beliefs = explicit_residuals;
  const core_internal::SweepLoopResult loop = core_internal::RunSweepLoop(
      backend, hhat, modulation, echo_modulation, with_echo,
      explicit_residuals, options, -1.0, &result.beliefs);
  result.iterations = loop.iterations;
  result.converged = loop.converged;
  result.diverged = loop.diverged;
  result.failed = loop.failed;
  result.error = loop.error;
  result.last_delta = loop.last_delta;
  result.diagnostics = loop.diagnostics;
  return result;
}

LinBpResult RunLinBp(const Graph& graph, const DenseMatrix& hhat,
                     const DenseMatrix& explicit_residuals,
                     const LinBpOptions& options) {
  const engine::InMemoryBackend backend(&graph);
  return RunLinBp(backend, hhat, explicit_residuals, options);
}

}  // namespace linbp
