// The Mooij-Kappen sufficient convergence bound for standard BP
// (Appendix G of the paper).
//
// For pairwise potentials with a single coupling matrix H the bound reads
//   c(H) * rho(A_edge) < 1,
// where c(H) = max_{c1 != c2, d1 != d2} tanh( 1/4 |log (H(c1,d1) H(c2,d2))
// / (H(c1,d2) H(c2,d1))| ) and A_edge is the 2|E| x 2|E| directed edge
// matrix in which edge (u -> v) feeds every edge (v -> w), w != u. The
// appendix compares this against the LinBP* criterion rho(Hhat) rho(A) < 1
// and observes empirically that rho(A_edge) + 1 ~ rho(A).

#ifndef LINBP_CORE_MOOIJ_H_
#define LINBP_CORE_MOOIJ_H_

#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// c(H) of Appendix G for a stochastic coupling matrix H (entries >= 0).
/// Returns 1 (the tanh limit) if any cross ratio involves a zero entry.
double MooijCouplingConstant(const DenseMatrix& h);

/// Spectral radius of the directed edge matrix A_edge (power iteration on
/// an implicit operator; the matrix has one row per directed edge).
double EdgeMatrixSpectralRadius(const Graph& graph, int max_iterations = 500,
                                double tolerance = 1e-10);

/// Both sides of the Appendix G comparison for Hhat = eps * Hhat_o and
/// H = 1/k + Hhat.
struct BoundComparison {
  double mooij_value = 0.0;        // c(H) * rho(A_edge); BP converges if < 1
  double linbp_star_value = 0.0;   // rho(Hhat) * rho(A); LinBP* conv. if < 1
  double edge_matrix_radius = 0.0;
  double adjacency_radius = 0.0;
  double coupling_constant = 0.0;  // c(H)
};
BoundComparison CompareConvergenceBounds(const Graph& graph,
                                         const DenseMatrix& hhat);

}  // namespace linbp

#endif  // LINBP_CORE_MOOIJ_H_
