#include "src/core/convergence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/engine/backend_ops.h"
#include "src/engine/in_memory_backend.h"
#include "src/la/dense_linalg.h"
#include "src/la/kron_ops.h"
#include "src/la/norms.h"
#include "src/la/solvers.h"
#include "src/util/check.h"

namespace linbp {
namespace {

// Norms of the diagonal degree matrix: induced-1 and induced-inf are the
// max degree; Frobenius is sqrt(sum d_s^2).
double MinNormOfDegrees(const std::vector<double>& degrees) {
  double max_degree = 0.0;
  double frobenius_sq = 0.0;
  for (const double d : degrees) {
    max_degree = std::max(max_degree, std::abs(d));
    frobenius_sq += d * d;
  }
  return std::min(max_degree, std::sqrt(frobenius_sq));
}

}  // namespace

double AdjacencySpectralRadius(const engine::PropagationBackend& backend,
                               int max_iterations, double tolerance,
                               const exec::ExecContext& ctx) {
  const engine::BackendAdjacencyOperator op(&backend, ctx);
  return PowerIteration(op, max_iterations, tolerance).spectral_radius;
}

double AdjacencySpectralRadius(const Graph& graph, int max_iterations,
                               double tolerance) {
  const engine::InMemoryBackend backend(&graph);
  return AdjacencySpectralRadius(backend, max_iterations, tolerance);
}

double CouplingSpectralRadius(const DenseMatrix& hhat) {
  return SymmetricSpectralRadius(hhat);
}

double LinBpOperatorSpectralRadius(const engine::PropagationBackend& backend,
                                   const DenseMatrix& hhat,
                                   LinBpVariant variant, int max_iterations,
                                   double tolerance,
                                   const exec::ExecContext& ctx) {
  LINBP_CHECK_MSG(variant != LinBpVariant::kLinBpExact,
                  "spectral criteria are defined for kLinBp / kLinBpStar");
  const engine::BackendLinBpOperator op(&backend, hhat,
                                        variant == LinBpVariant::kLinBp,
                                        ctx);
  return PowerIteration(op, max_iterations, tolerance).spectral_radius;
}

double LinBpOperatorSpectralRadius(const Graph& graph, const DenseMatrix& hhat,
                                   LinBpVariant variant, int max_iterations,
                                   double tolerance) {
  const engine::InMemoryBackend backend(&graph);
  return LinBpOperatorSpectralRadius(backend, hhat, variant, max_iterations,
                                     tolerance);
}

bool LinBpConverges(const engine::PropagationBackend& backend,
                    const DenseMatrix& hhat, LinBpVariant variant) {
  return LinBpOperatorSpectralRadius(backend, hhat, variant) < 1.0;
}

bool LinBpConverges(const Graph& graph, const DenseMatrix& hhat,
                    LinBpVariant variant) {
  const engine::InMemoryBackend backend(&graph);
  return LinBpConverges(backend, hhat, variant);
}

double ExactEpsilonThreshold(const engine::PropagationBackend& backend,
                             const CouplingMatrix& coupling,
                             LinBpVariant variant, double tolerance,
                             const exec::ExecContext& ctx) {
  const double rho_h = CouplingSpectralRadius(coupling.residual());
  LINBP_CHECK_MSG(rho_h > 0.0, "zero coupling residual");
  constexpr int kRhoIterations = 500;
  constexpr double kRhoTolerance = 1e-11;
  if (variant == LinBpVariant::kLinBpStar) {
    // Lemma 8: rho(eps * Hhat_o (x) A) = eps * rho(Hhat_o) * rho(A) = 1.
    return 1.0 / (rho_h * AdjacencySpectralRadius(backend, kRhoIterations,
                                                  kRhoTolerance, ctx));
  }
  // Bisection on eps -> rho(M(eps)); rho is increasing in eps over the
  // bracketed range.
  auto rho_at = [&](double eps) {
    return LinBpOperatorSpectralRadius(backend, coupling.ScaledResidual(eps),
                                       variant, kRhoIterations,
                                       kRhoTolerance, ctx);
  };
  double hi =
      1.0 / (rho_h * std::max(AdjacencySpectralRadius(
                                  backend, kRhoIterations, kRhoTolerance,
                                  ctx),
                              1e-12));
  // Expand until divergence; degenerate graphs (no edges) never diverge.
  int expansions = 0;
  while (rho_at(hi) < 1.0) {
    hi *= 2.0;
    if (++expansions > 80) return std::numeric_limits<double>::infinity();
  }
  double lo = hi / 2.0;
  // ...then shrink the lower end until convergence brackets the root.
  while (rho_at(lo) >= 1.0) {
    hi = lo;
    lo /= 2.0;
  }
  while ((hi - lo) / hi > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (rho_at(mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double ExactEpsilonThreshold(const Graph& graph, const CouplingMatrix& coupling,
                             LinBpVariant variant, double tolerance) {
  const engine::InMemoryBackend backend(&graph);
  return ExactEpsilonThreshold(backend, coupling, variant, tolerance);
}

double SufficientEpsilonBound(const Graph& graph,
                              const CouplingMatrix& coupling,
                              LinBpVariant variant) {
  const double h_norm = MinNorm(coupling.residual());
  LINBP_CHECK_MSG(h_norm > 0.0, "zero coupling residual");
  const double a_norm = MinNorm(graph.adjacency());
  if (variant == LinBpVariant::kLinBpStar) {
    // ||Hhat|| < 1 / ||A||  =>  eps < 1 / (||A|| ||Hhat_o||).
    return 1.0 / (a_norm * h_norm);
  }
  const double d_norm = MinNormOfDegrees(graph.weighted_degrees());
  if (d_norm == 0.0) return 1.0 / (a_norm * h_norm);
  // ||Hhat|| < (sqrt(||A||^2 + 4 ||D||) - ||A||) / (2 ||D||).
  const double bound =
      (std::sqrt(a_norm * a_norm + 4.0 * d_norm) - a_norm) / (2.0 * d_norm);
  return bound / h_norm;
}

double SimpleEpsilonBound(const Graph& graph, const CouplingMatrix& coupling) {
  // Lemma 23 uses induced 1- or inf-norms only (max row/column sums).
  const double h_norm = std::min(Induced1Norm(coupling.residual()),
                                 InducedInfNorm(coupling.residual()));
  LINBP_CHECK_MSG(h_norm > 0.0, "zero coupling residual");
  const double a_norm = std::min(Induced1Norm(graph.adjacency()),
                                 InducedInfNorm(graph.adjacency()));
  return 1.0 / (2.0 * a_norm * h_norm);
}

ConvergenceReport AnalyzeConvergence(const Graph& graph,
                                     const CouplingMatrix& coupling) {
  ConvergenceReport report;
  report.adjacency_spectral_radius = AdjacencySpectralRadius(graph);
  report.coupling_spectral_radius = CouplingSpectralRadius(coupling.residual());
  report.exact_epsilon_linbp =
      ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBp);
  report.exact_epsilon_linbp_star =
      ExactEpsilonThreshold(graph, coupling, LinBpVariant::kLinBpStar);
  report.sufficient_epsilon_linbp =
      SufficientEpsilonBound(graph, coupling, LinBpVariant::kLinBp);
  report.sufficient_epsilon_linbp_star =
      SufficientEpsilonBound(graph, coupling, LinBpVariant::kLinBpStar);
  report.simple_epsilon_linbp = SimpleEpsilonBound(graph, coupling);
  return report;
}

}  // namespace linbp
