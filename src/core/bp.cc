#include "src/core/bp.h"

#include <cmath>

#include "src/util/check.h"

namespace linbp {
namespace {

// Normalizes the k entries at `msg` to sum to k (Eq. 3). Returns false if
// the entries sum to a non-positive or non-finite value.
bool NormalizeMessage(double* msg, std::int64_t k) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < k; ++i) sum += msg[i];
  if (!(sum > 0.0) || !std::isfinite(sum)) return false;
  const double scale = static_cast<double>(k) / sum;
  for (std::int64_t i = 0; i < k; ++i) msg[i] *= scale;
  return true;
}

}  // namespace

BpResult RunBp(const Graph& graph, const DenseMatrix& h,
               const DenseMatrix& priors, const BpOptions& options) {
  const std::int64_t n = graph.num_nodes();
  const std::int64_t k = h.rows();
  LINBP_CHECK(h.cols() == k && k >= 2);
  LINBP_CHECK(priors.rows() == n && priors.cols() == k);
  for (const double v : h.data()) LINBP_CHECK_MSG(v >= 0.0, "H must be >= 0");

  const SparseMatrix& adjacency = graph.adjacency();
  const auto& row_ptr = adjacency.row_ptr();
  const std::vector<std::int64_t> reverse = ReverseEdgeIndex(adjacency);
  const std::int64_t num_edges = adjacency.NumNonZeros();

  // msg[e * k + i]: message along directed edge slot e (row s, col t reads
  // as the message s -> t), initialized to the uninformative all-ones.
  std::vector<double> msg(num_edges * k, 1.0);
  std::vector<double> next(num_edges * k, 0.0);

  BpResult result;
  // Scratch: prefix/suffix in-message products for one node.
  std::vector<double> prefix;
  std::vector<double> suffix;

  for (int it = 1; it <= options.max_iterations; ++it) {
    double delta = 0.0;
    for (std::int64_t s = 0; s < n; ++s) {
      const std::int64_t begin = row_ptr[s];
      const std::int64_t end = row_ptr[s + 1];
      const std::int64_t degree = end - begin;
      if (degree == 0) continue;
      // In-messages of s are msg[reverse[e]] for out-slots e.
      // prefix[j*k + i] = prod of in-messages 0..j-1 (class i), and
      // suffix[j*k + i] = prod of in-messages j+1..degree-1.
      prefix.assign((degree + 1) * k, 1.0);
      suffix.assign((degree + 1) * k, 1.0);
      for (std::int64_t j = 0; j < degree; ++j) {
        const double* in = &msg[reverse[begin + j] * k];
        for (std::int64_t i = 0; i < k; ++i) {
          prefix[(j + 1) * k + i] = prefix[j * k + i] * in[i];
        }
      }
      for (std::int64_t j = degree - 1; j >= 0; --j) {
        const double* in = &msg[reverse[begin + j] * k];
        for (std::int64_t i = 0; i < k; ++i) {
          suffix[j * k + i] = suffix[(j + 1) * k + i] * in[i];
        }
      }
      for (std::int64_t j = 0; j < degree; ++j) {
        const std::int64_t e = begin + j;
        double* out = &next[e * k];
        // q(j') = prior(s, j') * prod_{u != t} m_{u->s}(j'),
        // out(i) = sum_j' H(j', i) q(j')   (Eq. 3).
        for (std::int64_t i = 0; i < k; ++i) out[i] = 0.0;
        for (std::int64_t jj = 0; jj < k; ++jj) {
          const double q = priors.At(s, jj) * prefix[j * k + jj] *
                           suffix[(j + 1) * k + jj];
          if (q == 0.0) continue;
          for (std::int64_t i = 0; i < k; ++i) out[i] += h.At(jj, i) * q;
        }
        if (!NormalizeMessage(out, k)) {
          result.diverged = true;
          result.iterations = it;
          result.beliefs = DenseMatrix(n, k);
          return result;
        }
        for (std::int64_t i = 0; i < k; ++i) {
          delta = std::max(delta, std::abs(out[i] - msg[e * k + i]));
        }
      }
    }
    msg.swap(next);
    result.iterations = it;
    result.last_delta = delta;
    if (!std::isfinite(delta) || delta > options.divergence_threshold) {
      result.diverged = true;
      break;
    }
    if (delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }

  if (options.keep_messages) result.messages = msg;

  // Posterior beliefs (Eq. 1): b_s ~ prior_s x prod of in-messages.
  result.beliefs = DenseMatrix(n, k);
  for (std::int64_t s = 0; s < n; ++s) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < k; ++i) {
      double value = priors.At(s, i);
      for (std::int64_t e = row_ptr[s]; e < row_ptr[s + 1]; ++e) {
        value *= msg[reverse[e] * k + i];
      }
      result.beliefs.At(s, i) = value;
      sum += value;
    }
    if (sum > 0.0 && std::isfinite(sum)) {
      for (std::int64_t i = 0; i < k; ++i) result.beliefs.At(s, i) /= sum;
    } else {
      // Degenerate (all-zero) row: fall back to the uniform distribution.
      for (std::int64_t i = 0; i < k; ++i) {
        result.beliefs.At(s, i) = 1.0 / static_cast<double>(k);
      }
    }
  }
  return result;
}

DenseMatrix ExactMarginals(const Graph& graph, const DenseMatrix& h,
                           const DenseMatrix& priors) {
  const std::int64_t n = graph.num_nodes();
  const std::int64_t k = h.rows();
  LINBP_CHECK(priors.rows() == n && priors.cols() == k);
  LINBP_CHECK_MSG(n <= 12, "brute-force enumeration is k^n");
  double total = 0.0;
  DenseMatrix marginals(n, k);
  std::vector<std::int64_t> state(n, 0);
  while (true) {
    // Unnormalized probability of this joint state.
    double p = 1.0;
    for (std::int64_t s = 0; s < n; ++s) p *= priors.At(s, state[s]);
    if (p != 0.0) {
      for (const Edge& e : graph.edges()) p *= h.At(state[e.u], state[e.v]);
    }
    total += p;
    for (std::int64_t s = 0; s < n; ++s) marginals.At(s, state[s]) += p;
    // Advance the mixed-radix counter.
    std::int64_t pos = 0;
    while (pos < n && ++state[pos] == k) {
      state[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  LINBP_CHECK_MSG(total > 0.0, "all states have zero probability");
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t i = 0; i < k; ++i) marginals.At(s, i) /= total;
  }
  return marginals;
}

}  // namespace linbp
