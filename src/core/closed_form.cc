#include "src/core/closed_form.h"

#include "src/la/dense_linalg.h"
#include "src/la/kron_ops.h"
#include "src/la/solvers.h"
#include "src/util/check.h"

namespace linbp {
namespace {

// Propagation and echo modulation matrices for a variant (see linbp.cc).
struct Modulations {
  DenseMatrix propagation;
  DenseMatrix echo;      // valid only when with_echo
  bool with_echo = true;
};

Modulations ModulationsFor(const DenseMatrix& hhat, LinBpVariant variant) {
  Modulations m{hhat, hhat.Multiply(hhat), true};
  switch (variant) {
    case LinBpVariant::kLinBp:
      break;
    case LinBpVariant::kLinBpStar:
      m.with_echo = false;
      break;
    case LinBpVariant::kLinBpExact:
      m.propagation = ExactModulation(hhat);
      m.echo = hhat.Multiply(m.propagation);
      break;
  }
  return m;
}

}  // namespace

DenseMatrix ClosedFormLinBpDense(const Graph& graph, const DenseMatrix& hhat,
                                 const DenseMatrix& explicit_residuals,
                                 LinBpVariant variant, std::int64_t max_dim) {
  const std::int64_t n = graph.num_nodes();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(explicit_residuals.rows() == n && explicit_residuals.cols() == k);
  LINBP_CHECK_MSG(n * k <= max_dim, "dense closed form too large");

  const Modulations mod = ModulationsFor(hhat, variant);
  const DenseMatrix a = graph.adjacency().ToDense();
  // System matrix: I - Hprop (x) A [+ Hecho (x) D].
  DenseMatrix system = DenseMatrix::Identity(n * k)
                           .Sub(mod.propagation.Kronecker(a));
  if (mod.with_echo) {
    const DenseMatrix d = DenseMatrix::Diagonal(graph.weighted_degrees());
    system = system.Add(mod.echo.Kronecker(d));
  }
  const auto lu = LuFactorization::Compute(system);
  LINBP_CHECK_MSG(lu.has_value(), "closed-form system is singular");
  const std::vector<double> solution =
      lu->Solve(VectorizeBeliefs(explicit_residuals));
  return UnvectorizeBeliefs(solution, n, k);
}

ClosedFormIterativeResult ClosedFormLinBpIterative(
    const Graph& graph, const DenseMatrix& hhat,
    const DenseMatrix& explicit_residuals, LinBpVariant variant,
    int max_iterations, double tolerance) {
  const std::int64_t n = graph.num_nodes();
  const std::int64_t k = hhat.rows();
  LINBP_CHECK(explicit_residuals.rows() == n && explicit_residuals.cols() == k);

  const Modulations mod = ModulationsFor(hhat, variant);
  // The implicit operator needs propagation/echo; LinBpOperator supports the
  // (propagation, propagation^2) pairing only, so for kLinBpExact we wrap
  // LinBpPropagate directly.
  class Operator final : public LinearOperator {
   public:
    Operator(const Graph* graph, Modulations mod)
        : graph_(graph), mod_(std::move(mod)) {}
    std::int64_t dim() const override {
      return graph_->num_nodes() * mod_.propagation.rows();
    }
    void Apply(const std::vector<double>& x,
               std::vector<double>* y) const override {
      const DenseMatrix b = UnvectorizeBeliefs(x, graph_->num_nodes(),
                                               mod_.propagation.rows());
      *y = VectorizeBeliefs(LinBpPropagate(
          graph_->adjacency(), graph_->weighted_degrees(), mod_.propagation,
          mod_.echo, b, mod_.with_echo));
    }

   private:
    const Graph* graph_;
    Modulations mod_;
  };

  const Operator op(&graph, mod);
  const JacobiResult jacobi =
      JacobiSolve(op, VectorizeBeliefs(explicit_residuals), max_iterations,
                  tolerance);
  ClosedFormIterativeResult result;
  result.beliefs = UnvectorizeBeliefs(jacobi.solution, n, k);
  result.iterations = jacobi.iterations;
  result.converged = jacobi.converged;
  return result;
}

}  // namespace linbp
