// Standardization, top-belief assignment, and the quality metrics of
// Sect. 7 of the paper.

#ifndef LINBP_CORE_LABELING_H_
#define LINBP_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "src/la/dense_matrix.h"

namespace linbp {

/// zeta(x) of Def. 11: (x - mean) / population standard deviation; the zero
/// vector when the standard deviation is zero.
std::vector<double> Standardize(const std::vector<double>& x);

/// Population standard deviation of a vector (sigma in the paper).
double StandardDeviation(const std::vector<double>& x);

/// Applies zeta to every row of a belief matrix.
DenseMatrix StandardizeRows(const DenseMatrix& beliefs);

/// Per-node set of top classes. Multiple classes appear only on ties.
struct TopBeliefAssignment {
  /// classes[s] lists the top classes of node s in increasing order.
  std::vector<std::vector<int>> classes;

  /// Total number of (node, class) pairs.
  std::int64_t TotalBeliefs() const;
};

/// Returns the classes with highest belief per node (Problem 1). With the
/// default tie_tolerance of 0 only exactly equal values tie (the paper's
/// semantics: LinBP returns unique top beliefs while SBP can compute exact
/// ties); a positive tolerance also ties classes with
/// max - b <= tie_tolerance * (max - min). Rows whose entries are all equal
/// yield all classes.
TopBeliefAssignment TopBeliefs(const DenseMatrix& beliefs,
                               double tie_tolerance = 0.0);

/// Precision / recall / F1 between a ground-truth assignment and another
/// method's assignment, counting shared (node, class) pairs (Sect. 7).
struct QualityMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::int64_t shared = 0;
  std::int64_t ground_truth_total = 0;
  std::int64_t other_total = 0;
};

/// Compares assignments over all nodes, or over `nodes` when non-empty.
QualityMetrics CompareAssignments(const TopBeliefAssignment& ground_truth,
                                  const TopBeliefAssignment& other,
                                  const std::vector<std::int64_t>& nodes = {});

}  // namespace linbp

#endif  // LINBP_CORE_LABELING_H_
