// Standard (loopy) belief propagation, Eqs. 1-3 of the paper.
//
// This is the baseline LinBP linearizes. Messages live on directed edges
// and are normalized so their entries sum to k (Eq. 3), the scaling under
// which the linearization's centering around 1 is exact. The implementation
// uses prefix/suffix products per node to form the "all neighbors except t"
// products without divisions, so zero entries in H or in explicit beliefs
// are handled exactly.

#ifndef LINBP_CORE_BP_H_
#define LINBP_CORE_BP_H_

#include <cstdint>

#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {

/// Options for RunBp.
struct BpOptions {
  /// Maximum number of synchronous message-update sweeps.
  int max_iterations = 100;
  /// Stop when the largest absolute message change falls below this.
  double tolerance = 1e-9;
  /// Treat message values larger than this as divergence.
  double divergence_threshold = 1e12;
  /// Keep the final messages in BpResult::messages (diagnostics; used to
  /// validate the Lemma 6 message linearization).
  bool keep_messages = false;
};

/// Result of a BP run.
struct BpResult {
  /// n x k posterior beliefs; rows sum to 1.
  DenseMatrix beliefs;
  int iterations = 0;
  bool converged = false;
  bool diverged = false;
  /// Largest absolute message change in the final sweep.
  double last_delta = 0.0;
  /// With BpOptions::keep_messages: the final messages, laid out as
  /// messages[e * k + i] for CSR adjacency slot e — slot e in row s with
  /// column t holds the message s -> t. Entries of one message sum to k
  /// (Eq. 3's normalization).
  std::vector<double> messages;
};

/// Runs loopy BP on `graph` with stochastic coupling matrix `h` (k x k,
/// symmetric, non-negative) and prior beliefs `priors` (n x k, every row
/// summing to 1; unlabeled nodes carry the uniform row 1/k).
///
/// Edge weights are ignored (standard BP has no weighted-edge semantics in
/// the paper; its experiments use unweighted graphs).
BpResult RunBp(const Graph& graph, const DenseMatrix& h,
               const DenseMatrix& priors, const BpOptions& options = {});

/// Exact marginals of the pairwise Markov random field that BP
/// approximates, by brute-force enumeration of all k^n states:
///   P(x) ~ prod_s priors(s, x_s) * prod_{(s,t) in E} h(x_s, x_t).
/// Only feasible for tiny graphs; used to validate BP on trees.
DenseMatrix ExactMarginals(const Graph& graph, const DenseMatrix& h,
                           const DenseMatrix& priors);

}  // namespace linbp

#endif  // LINBP_CORE_BP_H_
