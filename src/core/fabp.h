// Binary-class linearized BP (Appendix E of the paper; FaBP of Koutra et
// al., ECML/PKDD'11).
//
// For k = 2 the residuals collapse to scalars: beliefs bhat = [b, -b],
// coupling Hhat = [[h, -h], [-h, h]]. The steady state satisfies
//   b = (I_n - c1 * A + c2 * D)^-1 e
// with c1 = 2h / (1 - 4h^2) and c2 = 4h^2 / (1 - 4h^2). This equals the
// kLinBpExact variant specialized to k = 2 (the paper shows both centering
// choices lead to the same equation).

#ifndef LINBP_CORE_FABP_H_
#define LINBP_CORE_FABP_H_

#include <string>
#include <vector>

#include "src/core/linbp.h"
#include "src/engine/propagation_backend.h"
#include "src/exec/exec_context.h"
#include "src/graph/graph.h"

namespace linbp {

/// Result of a FaBP solve.
struct FabpResult {
  /// Per-node scalar residual belief in class 0 (class 1 is its negation).
  std::vector<double> beliefs;
  int iterations = 0;
  bool converged = false;
  /// The Jacobi iteration was detected as diverging (residual delta grew
  /// for several consecutive iterations with a fitted contraction rate
  /// above 1) and aborted early. `failed` is then also set and `error`
  /// carries the diagnostic (rho-hat and, when computable, the rho(M)
  /// power-iteration estimate).
  bool diverged = false;
  /// A streamed backend failed mid-solve; `error` describes the failure
  /// and `beliefs` is empty. Always false for in-memory backends. Also
  /// set by a divergence abort (see `diverged`) — `beliefs` then holds
  /// the last iterate for inspection.
  bool failed = false;
  std::string error;
  /// Fitted convergence diagnostics of this run (see linbp.h).
  ConvergenceDiagnostics diagnostics;
};

/// Options for RunFabp (mirrors LinBpOptions for the binary solver).
struct FabpOptions {
  /// Maximum Jacobi iterations.
  int max_iterations = 1000;
  /// Stop when the max abs belief change falls below this.
  double tolerance = 1e-13;
  /// Where the per-iteration SpMV and scaling run.
  exec::ExecContext exec = exec::ExecContext::Default();
  /// Per-iteration telemetry hook (one SweepTelemetry per Jacobi
  /// iteration); independent of it, iterations record into the global
  /// obs registry and active tracer.
  SweepObserver observer;
  /// Storage precision of the belief vector on the iteration hot path.
  /// kF32 runs the f32 SpMV kernels with fp64 delta accumulation and
  /// widens the solution on exit; kF64 is bit-identical to the
  /// pre-precision-seam solver.
  Precision precision = Precision::kF64;
};

/// Solves the binary linearized system by Jacobi iteration over any
/// propagation backend. `h` is the scalar coupling residual (homophily
/// h > 0, heterophily h < 0, |h| < 1/2) and `explicit_residuals` the
/// per-node scalar priors (0 if unlabeled). The per-sweep SpMV and
/// scaling run on `options.exec` (bit-identical across backends and
/// thread counts per precision: per-row ownership throughout).
FabpResult RunFabp(const engine::PropagationBackend& backend, double h,
                   const std::vector<double>& explicit_residuals,
                   const FabpOptions& options);

/// RunFabp on a resident graph (wraps engine::InMemoryBackend).
FabpResult RunFabp(const Graph& graph, double h,
                   const std::vector<double>& explicit_residuals,
                   const FabpOptions& options);

/// Loose-argument overloads preserved for the pre-FabpOptions call
/// surface; they delegate to the options form (precision kF64).
FabpResult RunFabp(const engine::PropagationBackend& backend, double h,
                   const std::vector<double>& explicit_residuals,
                   int max_iterations = 1000, double tolerance = 1e-13,
                   const exec::ExecContext& exec =
                       exec::ExecContext::Default(),
                   const SweepObserver& observer = {});

/// RunFabp on a resident graph (wraps engine::InMemoryBackend).
FabpResult RunFabp(const Graph& graph, double h,
                   const std::vector<double>& explicit_residuals,
                   int max_iterations = 1000, double tolerance = 1e-13,
                   const exec::ExecContext& exec =
                       exec::ExecContext::Default(),
                   const SweepObserver& observer = {});

}  // namespace linbp

#endif  // LINBP_CORE_FABP_H_
