// Shared internals of the binary dataset formats (dataset-private).
//
// The monolithic snapshot (src/dataset/snapshot.h) and the sharded
// snapshot (src/dataset/shard.h) serialize the same Scenario sections
// with the same conventions — little-endian PODs, length-prefixed
// strings, FNV-1a payload checksums, and error-returning validation of
// every structural invariant before the trusted CSR adopt paths run.
// This header keeps those pieces in one place so the two formats cannot
// drift apart. It is an implementation detail of src/dataset: nothing
// outside the library links against it.

#ifndef LINBP_DATASET_FORMAT_INTERNAL_H_
#define LINBP_DATASET_FORMAT_INTERNAL_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/dataset/scenario.h"
#include "src/exec/exec_context.h"

namespace linbp {
namespace dataset {
namespace internal {

/// Shared header constants: every dataset file starts with an 8-byte
/// magic, a u32 version, and the u32 endian tag at offset 12.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::uint32_t kEndianTagSwapped = 0x04030201u;
inline constexpr std::uint32_t kFlagGroundTruth = 1u;
// v2 shards only: the value section stores f32 instead of f64.
inline constexpr std::uint32_t kFlagF32Values = 2u;
inline constexpr std::size_t kHeaderBytes = 64;
// Far above any real class count; bounds k before allocating k*k doubles.
inline constexpr std::int64_t kMaxClasses = 1024;

/// FNV-1a over a byte range (the payload checksum of every format).
std::uint64_t Fnv1a(const char* data, std::size_t size);

/// Appends `count` PODs to a payload buffer.
template <typename T>
void AppendPod(const T* data, std::size_t count, std::vector<char>* out) {
  const std::size_t bytes = count * sizeof(T);
  const std::size_t offset = out->size();
  out->resize(offset + bytes);
  if (bytes > 0) std::memcpy(out->data() + offset, data, bytes);
}

/// Appends a u32-length-prefixed string.
void AppendString(const std::string& s, std::vector<char>* out);

/// Bounds-checked sequential reader over payload bytes.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), remaining_(size) {}

  template <typename T>
  bool Read(T* out, std::size_t count) {
    // Division, not multiplication: a crafted header count must not wrap
    // the byte total around size_t and slip past the bound.
    if (count > remaining_ / sizeof(T)) return false;
    const std::size_t bytes = count * sizeof(T);
    if (bytes > 0) std::memcpy(out, data_, bytes);
    data_ += bytes;
    remaining_ -= bytes;
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* out, std::size_t count) {
    if (count > remaining_ / sizeof(T)) return false;
    out->resize(count);
    return Read(out->data(), count);
  }

  bool ReadString(std::string* out) {
    std::uint32_t length = 0;
    if (!Read(&length, 1)) return false;
    if (length > remaining_) return false;
    out->assign(data_, length);
    data_ += length;
    remaining_ -= length;
    return true;
  }

  std::size_t remaining() const { return remaining_; }

 private:
  const char* data_;
  std::size_t remaining_;
};

/// Reads a whole file into memory. Returns false and fills *error on
/// open or read failure.
bool ReadFileBytes(const std::string& path, std::vector<char>* out,
                   std::string* error);

/// Writes header + payload, then flushes and closes with the stream
/// state checked at every step: a buffered failure (disk full, quota)
/// often surfaces only at flush/close, and reporting success on a
/// truncated file would defeat the checksum the reader trusts.
bool WriteFileDurably(const std::string& path, const char* header,
                      std::size_t header_bytes,
                      const std::vector<char>& payload, std::string* error);

/// Validates the shared magic/version/endianness prefix of a header.
/// `magic` must point at 8 bytes; `what` names the format in errors
/// ("snapshot", "shard manifest", ...).
bool CheckMagicVersionEndian(const std::string& path, const char* data,
                             std::size_t size, const char* magic,
                             std::uint32_t expected_version, const char* what,
                             std::string* error);

/// Multi-version variant: accepts any version in [min_version,
/// max_version] and reports the one found through *version. The
/// single-version overload above delegates here with min == max.
bool CheckMagicVersionEndianRange(const std::string& path, const char* data,
                                  std::size_t size, const char* magic,
                                  std::uint32_t min_version,
                                  std::uint32_t max_version, const char* what,
                                  std::uint32_t* version, std::string* error);

/// Validates a k*k row-major coupling residual: finite entries,
/// symmetry, |row sum| <= 1e-9. One gate shared by the bulk loader
/// (ValidateAndAssembleScenario) and the streaming reader
/// (ShardStreamReader::Open), so the two paths cannot drift on what
/// counts as a valid manifest. `path` prefixes the error.
bool CheckCouplingResidual(const std::string& path,
                           const std::vector<double>& coupling,
                           std::int64_t k, std::string* error);

/// Validates the count fields every dataset header carries: num_nodes in
/// [0, int32 max], k in [1, kMaxClasses], nnz >= 0, num_explicit in
/// [0, num_nodes], and no flag bits outside `allowed_flags` (v1 headers
/// pass kFlagGroundTruth; v2 shard headers additionally admit
/// kFlagF32Values). `what` names the header in errors ("header",
/// "manifest header").
bool CheckHeaderCounts(const std::string& path, std::int64_t num_nodes,
                       std::int64_t k, std::int64_t nnz,
                       std::int64_t num_explicit, std::uint32_t flags,
                       std::uint32_t allowed_flags, const char* what,
                       std::string* error);

/// The deserialized sections of one Scenario, before validation. The
/// monolithic loader fills this from a single payload; the sharded
/// loader assembles it from per-shard slices.
struct ScenarioParts {
  std::string name;
  std::string spec;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  bool has_ground_truth = false;
  std::vector<double> coupling;            // k*k, row-major
  std::vector<std::int64_t> row_ptr;       // num_nodes + 1
  std::vector<std::int32_t> col_idx;
  std::vector<double> values;
  std::vector<std::int64_t> explicit_nodes;
  std::vector<double> explicit_rows;       // explicit_nodes.size() * k
  std::vector<std::int32_t> ground_truth;  // num_nodes iff has_ground_truth
};

// ---------------------------------------------------------------------
// Shard-format internals, shared by the bulk loader (shard.cc) and the
// out-of-core streaming reader (shard_stream.cc). The on-disk layout is
// documented in src/dataset/shard.h.

/// Magics of the shard manifest and shard files.
inline constexpr char kShardManifestMagic[8] = {'L', 'I', 'N', 'B',
                                                'P', 'S', 'H', 'M'};
inline constexpr char kShardFileMagic[8] = {'L', 'I', 'N', 'B',
                                            'P', 'S', 'H', 'D'};

/// One parsed manifest shard entry. `payload_bytes` is the on-disk
/// payload size (file size minus the 64-byte header): for v1 it is
/// recomputed from the counts via ShardPayloadBytes, for v2 it is read
/// from the manifest (the encoded size is not derivable from counts).
struct ShardManifestEntry {
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  std::int64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
  std::string file;
};

/// A parsed + validated shard manifest.
struct ShardManifest {
  std::uint32_t version = 1;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  bool has_ground_truth = false;
  bool values_f32 = false;  // v2 only: shard value sections store f32
  std::string name;
  std::string spec;
  std::vector<double> coupling;  // k*k
  std::vector<ShardManifestEntry> entries;
  std::int64_t file_bytes = 0;
};

/// Parses and fully validates a manifest: header ranges, payload
/// checksum, and a shard table whose row ranges exactly tile
/// [0, num_nodes) with per-shard counts summing to the global ones.
/// Accepts format versions in [1, max_version] and records the one
/// found in m->version.
bool ParseShardManifest(const std::string& path,
                        const std::vector<char>& bytes,
                        std::uint32_t max_version, ShardManifest* m,
                        std::string* error);

/// Joins a shard file name with the directory its manifest lives in.
std::string ShardSiblingPath(const std::string& manifest_path,
                             const std::string& file);

/// Exact payload byte count of one shard file — the single source of
/// truth shared by the writer's buffer reserve, the bulk loader's
/// preflight (which bounds the global allocations by actual on-disk
/// bytes), and the manifest-info payload total. A format change that
/// grows the payload must land here, or the preflight would either
/// reject valid files or (worse) reopen the hostile-manifest allocation
/// hole it exists to close. Cannot overflow: rows <= 2^31, nnz <= 2^48
/// (manifest cap), k <= kMaxClasses.
std::int64_t ShardPayloadBytes(std::int64_t rows, std::int64_t nnz,
                               std::int64_t num_explicit, std::int64_t k,
                               bool has_ground_truth);

/// Decoded (resident) payload byte count of one shard, any version: the
/// v1 sections with the value width picked by `values_f32`. For v1 this
/// equals ShardPayloadBytes; for v2 it is what the shard occupies after
/// decoding, which is what RAM warnings and `info` report as "decoded".
std::int64_t ShardDecodedPayloadBytes(std::int64_t rows, std::int64_t nnz,
                                      std::int64_t num_explicit,
                                      std::int64_t k, bool has_ground_truth,
                                      bool values_f32);

/// Smallest possible on-disk payload of a v2 shard with the given
/// counts: the u64 column-section prefix, at least one varint byte per
/// row and per column id, the exact value section, and the v1-layout
/// explicit/ground-truth sections. The loader preflight checks each v2
/// entry's payload_bytes against this floor, so a hostile manifest
/// cannot claim huge decoded counts backed by a tiny file and trigger a
/// multi-terabyte resize — the same hole ShardPayloadBytes closes for
/// v1. Cannot overflow for the same count caps.
std::int64_t ShardPayloadBytesV2Min(std::int64_t rows, std::int64_t nnz,
                                    std::int64_t num_explicit, std::int64_t k,
                                    bool has_ground_truth, bool values_f32);

// ---------------------------------------------------------------------
// v2 compressed column section: per row a varint entry count, then the
// row's column ids as varints — the first id raw, each subsequent id as
// the strictly positive delta to its predecessor (columns are sorted,
// so deltas are small and most ids fit 1-2 bytes). Varints are LEB128
// (7 payload bits per byte, high bit = continuation); every encoded
// value fits int32, so a valid varint is at most 5 bytes.

/// Appends one LEB128 varint.
void AppendVarint(std::uint64_t value, std::vector<char>* out);

/// Encodes `rows` rows of sorted column ids into the v2 column section.
/// `local_row_ptr` has rows + 1 entries rebased to 0.
void EncodeColumnSection(const std::int64_t* local_row_ptr, std::int64_t rows,
                         const std::int32_t* col_idx, std::vector<char>* out);

/// Decodes a v2 column section into a local row_ptr (rows + 1 entries)
/// and expected_nnz column ids. Rejects, with a short reason in *what
/// ("truncated varint", "varint overflow", "non-monotone delta", ...):
/// truncated or over-long (> 5 byte) varints, column ids outside
/// [0, num_nodes), zero deltas (equal or decreasing columns), per-row
/// counts that do not sum to expected_nnz, and trailing section bytes.
bool DecodeColumnSection(const char* data, std::size_t size,
                         std::int64_t rows, std::int64_t expected_nnz,
                         std::int64_t num_nodes, std::int64_t* local_row_ptr,
                         std::int32_t* col_idx, std::string* what);

/// Parsed header of one shard file.
struct ShardFileHeader {
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  std::uint32_t flags = 0;
  std::uint32_t shard_index = 0;
  std::uint64_t checksum = 0;
};

/// Validates one shard file's bytes against its manifest entry: magic /
/// version / endianness (the shard's version must equal the manifest's),
/// a header agreeing with the manifest (row range, counts, flags —
/// including the v2 f32-values bit — and index), and the payload
/// checksum matching both the header and the manifest. Fills *h on
/// success. The payload itself (bytes after the 64-byte header) is NOT
/// deserialized here.
bool CheckShardAgainstManifest(const std::string& path,
                               const std::vector<char>& bytes,
                               const ShardManifest& manifest,
                               std::int64_t shard, ShardFileHeader* h,
                               std::string* error);

/// Validates every structural invariant with error returns (the checksum
/// only proves the bytes match what was written, not that a writer was
/// well behaved): CSR row-pointer monotonicity, per-row column ordering
/// and range, no self-loops, finite symmetric weights (the CSR sweeps
/// fan out on `ctx`), a finite zero-row-sum symmetric coupling residual,
/// a sorted in-range explicit node list with finite rows, and in-range
/// ground-truth classes. On success assembles the Scenario through the
/// trusted FromValidatedCsr / FromValidatedAdjacency adopt paths, so
/// validation runs exactly once. `path` prefixes every error message.
std::optional<Scenario> ValidateAndAssembleScenario(
    const std::string& path, ScenarioParts parts,
    const exec::ExecContext& ctx, std::string* error);

}  // namespace internal
}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_FORMAT_INTERNAL_H_
