// Streaming access to sharded snapshots, one row block at a time.
//
// LoadShardedSnapshot (src/dataset/shard.h) materializes the whole CSR;
// this reader is the out-of-core alternative: Open() parses and fully
// validates only the manifest, and each ReadBlock(s) call reads,
// checksum-verifies, and deserializes exactly ONE shard's row block into
// a self-contained ShardStreamBlock. Blocks release their memory on
// destruction, so a caller that walks the shards with a bounded window
// (e.g. the double-buffered pipeline in src/exec/pipeline.h) keeps the
// peak resident CSR at O(window * max shard) instead of O(nnz).
//
// Every ReadBlock re-validates its shard from the bytes on disk — the
// header against the manifest entry, the FNV-1a payload checksum, local
// row-pointer structure, column-id bounds and ordering, finite weights,
// and the explicit-node slice — so corruption that appears mid-stream
// (between sweeps of an iterative solve) surfaces as an error return on
// the sweep that hits it, never as a crash or a silent wrong product.
// What the streaming path does NOT check is cross-shard symmetry of the
// assembled matrix (that requires the mirror entry's shard); symmetric-
// by-construction holds for every manifest ShardSnapshot writes.
//
// Byte accounting: the reader counts the CSR bytes (row_ptr + col_idx +
// values) of every live block, with a high-water mark, so tests and
// benchmarks can assert the streaming guarantee ("no more than two
// blocks resident") directly instead of trusting the pipeline shape.

#ifndef LINBP_DATASET_SHARD_STREAM_H_
#define LINBP_DATASET_SHARD_STREAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace linbp {
namespace dataset {

namespace internal {
struct ShardManifest;

/// Shared live/peak CSR byte counters (atomic: blocks are created and
/// destroyed from prefetch threads while others are consumed), plus
/// cumulative stream-I/O totals over the reader's lifetime.
struct ShardByteAccounting {
  std::atomic<std::int64_t> resident{0};
  std::atomic<std::int64_t> peak{0};
  // Cumulative, successful ReadBlock calls only (so the CSR total is
  // exactly the sum of block_csr_bytes over the blocks handed out, and
  // matches the global shard_stream_* registry series one-for-one).
  std::atomic<std::int64_t> blocks_read{0};
  std::atomic<std::int64_t> file_bytes_read{0};
  std::atomic<std::int64_t> csr_bytes_read{0};
  std::atomic<std::int64_t> checksum_retries{0};
  // On-disk payload bytes of compressed (v2) blocks read — the wire
  // size the varint encoding is shrinking, vs csr_bytes_read's decoded
  // size. Zero for v1 manifests.
  std::atomic<std::int64_t> encoded_bytes_read{0};

  void Add(std::int64_t bytes) {
    const std::int64_t now =
        resident.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::int64_t seen = peak.load(std::memory_order_relaxed);
    while (seen < now &&
           !peak.compare_exchange_weak(seen, now,
                                       std::memory_order_relaxed)) {
    }
  }
  void Release(std::int64_t bytes) {
    resident.fetch_sub(bytes, std::memory_order_relaxed);
  }
};
}  // namespace internal

/// One deserialized shard row block. Movable, not copyable; its CSR
/// bytes count against the owning reader's residency until destruction.
class ShardStreamBlock {
 public:
  ShardStreamBlock() = default;
  ~ShardStreamBlock();
  ShardStreamBlock(ShardStreamBlock&& other) noexcept;
  ShardStreamBlock& operator=(ShardStreamBlock&& other) noexcept;
  ShardStreamBlock(const ShardStreamBlock&) = delete;
  ShardStreamBlock& operator=(const ShardStreamBlock&) = delete;

  std::int64_t shard = 0;
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::vector<std::int64_t> row_ptr;  // local (rebased to 0), rows + 1
  std::vector<std::int32_t> col_idx;  // GLOBAL column ids
  /// Exactly one of `values` / `values_f32` is populated: f64 for v1 and
  /// v2/f64 manifests, f32 for v2/f32 ones. Keeping the narrow section
  /// narrow is the point — an f32 shard's values really are half the
  /// resident bytes, and the f32 kernels consume them with no second
  /// narrowing pass. f64 consumers widen per block.
  std::vector<double> values;
  std::vector<float> values_f32;
  std::vector<std::int64_t> explicit_nodes;  // global ids, sorted
  std::vector<double> explicit_rows;         // explicit_nodes.size() * k
  std::vector<std::int32_t> ground_truth;    // rows, iff manifest flag

  std::int64_t num_rows() const { return row_end - row_begin; }
  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values_f32.empty() ? values.size()
                                                        : values_f32.size());
  }
  /// The CSR bytes this block counts against its reader's residency —
  /// what a budgeted cache must account per cached block.
  std::int64_t resident_csr_bytes() const { return counted_bytes_; }

 private:
  friend class ShardStreamReader;
  void ReleaseAccounting();

  std::shared_ptr<internal::ShardByteAccounting> accounting_;
  std::int64_t counted_bytes_ = 0;
};

/// Validated handle on a shard manifest with per-block streaming reads.
/// ReadBlock is const and thread-safe (the accounting is atomic), so a
/// prefetch thread may read block s + 1 while block s is consumed.
class ShardStreamReader {
 public:
  ShardStreamReader(ShardStreamReader&&) = default;
  ShardStreamReader& operator=(ShardStreamReader&&) = default;

  /// Parses and fully validates the manifest (header, checksum, shard
  /// table); opens no shard file. Returns nullopt and fills *error on
  /// any corruption.
  static std::optional<ShardStreamReader> Open(
      const std::string& manifest_path, std::string* error);

  std::int64_t num_shards() const;
  std::int64_t num_nodes() const;
  std::int64_t k() const;
  std::int64_t nnz() const;
  std::int64_t num_explicit() const;
  bool has_ground_truth() const;
  /// Manifest format version (1 or 2).
  std::uint32_t version() const;
  /// True when blocks carry f32 value sections (v2/f32 manifests).
  bool values_f32() const;
  const std::string& name() const;
  const std::string& spec() const;
  /// The k*k residual coupling matrix from the manifest (row-major).
  const std::vector<double>& coupling() const;

  std::int64_t row_begin(std::int64_t shard) const;
  std::int64_t row_end(std::int64_t shard) const;

  /// CSR bytes (row_ptr + col_idx + values) of shard `s`, from the
  /// manifest counts.
  std::int64_t block_csr_bytes(std::int64_t shard) const;
  /// Max over shards of block_csr_bytes — the streaming unit size.
  std::int64_t max_block_csr_bytes() const;

  /// Reads and fully validates shard `shard` into *block. Returns false
  /// and fills *error on I/O failure or any corruption; *block is left
  /// empty then.
  bool ReadBlock(std::int64_t shard, ShardStreamBlock* block,
                 std::string* error) const;

  /// CSR bytes of currently live blocks / their lifetime high-water
  /// mark. Blocks keep their count alive past the reader (shared
  /// ownership), so these are exact even with prefetch in flight.
  std::int64_t resident_csr_bytes() const;
  std::int64_t peak_resident_csr_bytes() const;

  /// Cumulative I/O totals over successful ReadBlock calls: blocks
  /// handed out, shard-file bytes read for them, and their CSR bytes
  /// (sum of block_csr_bytes). These equal the global registry's
  /// shard_stream_{blocks_read,bytes_read,csr_bytes}_total deltas for
  /// reads through this reader.
  std::int64_t blocks_read_total() const;
  std::int64_t file_bytes_read_total() const;
  std::int64_t csr_bytes_read_total() const;
  /// On-disk payload bytes of compressed (v2) blocks read; 0 for v1.
  std::int64_t encoded_bytes_read_total() const;
  /// Times a shard failed manifest/checksum verification and the one
  /// re-read attempt was taken (transient-read protection; a second
  /// failure surfaces as the error).
  std::int64_t checksum_retries_total() const;

 private:
  ShardStreamReader();

  std::string manifest_path_;
  std::shared_ptr<internal::ShardManifest> manifest_;
  std::shared_ptr<internal::ShardByteAccounting> accounting_;
};

/// Memory-budgeted LRU cache of decoded blocks, keyed by shard index.
/// When a streamed solve's working set fits the budget, sweeps after the
/// first hit the cache and re-read nothing from disk; otherwise LRU
/// eviction bounds cached bytes by the budget. Thread-safe (one mutex:
/// the cache sits on the slow path — a hit replaces a disk read and a
/// full decode, so contention is dwarfed by the work it saves). Cached
/// blocks keep their reader's ShardByteAccounting alive and counted, so
/// residency instrumentation includes what the cache is holding.
class ShardBlockCache {
 public:
  /// `budget_bytes` <= 0 disables caching entirely (every Lookup
  /// misses, every Insert is dropped).
  explicit ShardBlockCache(std::int64_t budget_bytes);

  /// Returns the cached block for `shard` and refreshes its recency, or
  /// nullptr on a miss.
  std::shared_ptr<const ShardStreamBlock> Lookup(std::int64_t shard);

  /// Offers a freshly decoded block. Blocks larger than the whole
  /// budget are not cached; otherwise least-recently-used entries are
  /// evicted until the block fits.
  void Insert(std::int64_t shard,
              std::shared_ptr<const ShardStreamBlock> block);

  std::int64_t budget_bytes() const { return budget_bytes_; }
  std::int64_t cached_bytes() const;
  std::int64_t hits_total() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::int64_t misses_total() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t evictions_total() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const ShardStreamBlock> block;
    std::uint64_t stamp = 0;  // recency; larger = more recently used
  };

  std::int64_t budget_bytes_ = 0;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
  mutable std::mutex mu_;
  std::int64_t cached_bytes_ = 0;   // guarded by mu_
  std::uint64_t next_stamp_ = 0;    // guarded by mu_
  std::unordered_map<std::int64_t, Entry> entries_;  // guarded by mu_
};

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_SHARD_STREAM_H_
