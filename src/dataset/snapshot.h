// Binary graph snapshots: fast, checksummed persistence for Scenarios.
//
// Text edge lists parse one token at a time; a snapshot is a single
// read + memcpy of the frozen CSR arrays, so loading is dominated by I/O
// instead of parsing (see BENCH_dataset.json; the deserialization-side
// CSR validation and graph reconstruction fan out on an ExecContext).
// The on-disk layout is little-endian and versioned:
//
//   offset  size  field
//   0       8     magic "LINBPSNP"
//   8       4     u32 version (currently 1)
//   12      4     u32 endian tag 0x01020304 (byte-swapped on a
//                 big-endian writer, which readers reject)
//   16      8     i64 num_nodes
//   24      8     i64 k (classes)
//   32      8     i64 nnz (stored adjacency entries, 2x undirected edges)
//   40      8     i64 num_explicit (nodes with explicit beliefs)
//   48      4     u32 flags (bit 0: ground truth present)
//   52      4     u32 reserved (0)
//   56      8     u64 FNV-1a checksum of the payload bytes
//   64      ...   payload:
//                   u32 name length, name bytes
//                   u32 spec length, spec bytes
//                   f64[k*k]            coupling residual (row-major)
//                   i64[num_nodes + 1]  CSR row_ptr
//                   i32[nnz]            CSR col_idx
//                   f64[nnz]            CSR values
//                   i64[num_explicit]   explicit node ids (sorted)
//                   f64[num_explicit*k] explicit residual rows
//                   i32[num_nodes]      ground truth (iff flag bit 0)
//
// Load rejects wrong magic/version/endianness, truncated or oversized
// files, checksum mismatches, and structurally invalid CSR payloads with
// descriptive errors — it never aborts on bad bytes. For graphs larger
// than one comfortably resident file, src/dataset/shard.h splits the same
// sections by exec::RowPartition row blocks into per-shard files behind a
// checksummed manifest; both formats share their serialization and
// validation internals (src/dataset/format_internal.h).

#ifndef LINBP_DATASET_SNAPSHOT_H_
#define LINBP_DATASET_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/dataset/scenario.h"
#include "src/exec/exec_context.h"

namespace linbp {
namespace dataset {

/// Current snapshot format version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Writes `scenario` to `path`. Returns false and fills *error on I/O
/// failure.
bool SaveSnapshot(const Scenario& scenario, const std::string& path,
                  std::string* error);

/// Reads a snapshot back into a Scenario. CSR validation, symmetry
/// checking, and edge-list reconstruction run on `ctx`. Returns nullopt
/// and fills *error on I/O failure or any form of corruption.
std::optional<Scenario> LoadSnapshot(const std::string& path,
                                     std::string* error,
                                     const exec::ExecContext& ctx =
                                         exec::ExecContext::Default());

/// Header fields of a snapshot, without materializing the graph.
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  bool has_ground_truth = false;
  std::int64_t file_bytes = 0;
  std::string name;
  std::string spec;
};

/// Reads and validates the header (magic, version, endianness, size
/// bounds) plus the name/spec strings; does not verify the checksum or
/// deserialize the arrays.
std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             std::string* error);

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_SNAPSHOT_H_
