// Scenarios: self-contained label-propagation problem instances.
//
// A Scenario bundles everything one end-to-end LinBP/SBP run needs — the
// graph, the explicit (seeded) residual beliefs, the unscaled residual
// coupling matrix, and optional ground-truth labels — plus the metadata
// that produced it. Scenarios are built from compact text specs like
//
//   "sbm:n=100000,k=4,deg=8,mode=heterophily"
//
// via the registry in src/dataset/registry.h, and persist to the binary
// snapshot format in src/dataset/snapshot.h.

#ifndef LINBP_DATASET_SCENARIO_H_
#define LINBP_DATASET_SCENARIO_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/coupling.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {
namespace dataset {

/// One runnable problem instance. Beliefs and the coupling matrix are
/// residuals (centered), the representation LinBP and SBP consume.
struct Scenario {
  /// Registry key of the workload that produced this instance.
  std::string name;
  /// The full spec string ("name:key=value,..."), kept for provenance.
  std::string spec;

  Graph graph;
  /// Number of classes k.
  std::int64_t k = 0;
  /// Unscaled k x k residual coupling Hhat_o (rows/columns sum to 0).
  DenseMatrix coupling_residual;
  /// n x k explicit residual beliefs; zero rows for unlabeled nodes.
  DenseMatrix explicit_residuals;
  /// Sorted node ids with at least one nonzero explicit belief.
  std::vector<std::int64_t> explicit_nodes;
  /// Ground-truth class per node (-1 unknown); empty if the workload has
  /// no planted truth (e.g. the paper's Kronecker experiment).
  std::vector<int> ground_truth;

  /// The validated coupling matrix (rebuilt from coupling_residual).
  CouplingMatrix Coupling() const;

  bool HasGroundTruth() const { return !ground_truth.empty(); }

  /// Number of nodes with a known ground-truth class.
  std::int64_t NumGroundTruthNodes() const;
};

/// Key=value parameters of a scenario spec. Getters record which keys were
/// consumed so the registry can reject typos ("unknown parameter"), and
/// record malformed values as errors instead of silently falling back.
class ScenarioParams {
 public:
  /// Parses the "key=value,key=value" tail of a spec (empty is fine).
  /// Rejects missing '=', empty keys, and duplicate keys.
  static std::optional<ScenarioParams> Parse(const std::string& text,
                                             std::string* error);

  /// Integer parameter with a default. Plain decimal values parse
  /// exactly over the full int64 range; "1e6"-style values are accepted
  /// only if integral after conversion and below 2^53 (where doubles are
  /// still exact). Out-of-range values are recorded on the value_error()
  /// path, never silently rounded.
  std::int64_t Int(const std::string& key, std::int64_t fallback);

  /// Floating-point parameter with a default.
  double Double(const std::string& key, double fallback);

  /// String parameter with a default.
  std::string Str(const std::string& key, const std::string& fallback);

  /// First malformed-value message, empty if none so far.
  const std::string& value_error() const { return value_error_; }

  /// Keys present in the spec that no getter has consumed.
  std::vector<std::string> UnconsumedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::string value_error_;
};

/// Splits a spec "name" or "name:params" into the scenario name and its
/// parameter tail. Returns nullopt (and fills *error) on an empty name or
/// malformed parameters.
struct ParsedSpec {
  std::string name;
  ScenarioParams params;
};
std::optional<ParsedSpec> ParseScenarioSpec(const std::string& spec,
                                            std::string* error);

/// Resolves a coupling spec shared by the CLI and the file-backed
/// scenario: a preset name (homophily2 | heterophily2 | auction | dblp4 |
/// kronecker3) or a path to a dense matrix file holding either a
/// stochastic or a residual coupling matrix.
std::optional<CouplingMatrix> ResolveCouplingSpec(const std::string& spec,
                                                  std::string* error);

/// Seeds explicit beliefs from ground truth: every node with a known class
/// is revealed independently with probability `labeled_fraction`
/// (deterministic under `seed`), receiving ExplicitResidualForClass(k,
/// class, strength). At least one node is always revealed.
void RevealGroundTruth(double labeled_fraction, double strength,
                       std::uint64_t seed, Scenario* scenario);

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_SCENARIO_H_
