// Sharded snapshots: one Scenario split into per-row-block shard files
// plus a checksummed manifest.
//
// The paper's scalability experiments (Sect. 7) run LinBP/SBP on graphs
// with hundreds of millions of edges — larger than one comfortably
// resident CSR. The linearized fixed-point iteration decomposes cleanly
// over contiguous row blocks, so the shard key is the same nnz-balanced
// exec::RowPartition the parallel kernels already split on: one shard =
// one row block, holding that block's slice of every Scenario section.
// Shards load in parallel on an ExecContext (one task per shard), which
// also makes the sharded format the seam for future out-of-core or
// distributed execution.
//
// On-disk layout. ShardSnapshot writes into a directory:
//
//   <dir>/manifest.lbpm        the manifest (written last, so a crashed
//                              writer never leaves a loadable manifest
//                              pointing at missing shards)
//   <dir>/shard-000000.lbpsd   shard 0 (rows [0, r1))
//   <dir>/shard-000001.lbpsd   shard 1 (rows [r1, r2))
//   ...
//
// Manifest file (little-endian, 64-byte header like snapshot.h):
//
//   offset  size  field
//   0       8     magic "LINBPSHM"
//   8       4     u32 version (1 = raw payloads, 2 = compressed)
//   12      4     u32 endian tag 0x01020304
//   16      8     i64 num_nodes
//   24      8     i64 k (classes)
//   32      8     i64 nnz (global stored adjacency entries)
//   40      8     i64 num_explicit (global)
//   48      4     u32 flags (bit 0: ground truth present;
//                            bit 1, v2 only: f32 value sections)
//   52      4     u32 num_shards
//   56      8     u64 FNV-1a checksum of the manifest payload
//   64      ...   payload:
//                   u32 name length, name bytes
//                   u32 spec length, spec bytes
//                   f64[k*k] coupling residual (row-major)
//                   num_shards x shard entry:
//                     i64 row_begin, i64 row_end
//                     i64 nnz, i64 num_explicit
//                     i64 payload_bytes (v2 only: the shard file's
//                         on-disk payload size, not derivable from the
//                         counts once the columns are varint-packed)
//                     u64 FNV-1a checksum of the shard's payload
//                     u32 file-name length, file-name bytes (relative
//                         to the manifest's directory)
//
// Shard file (64-byte header):
//
//   0       8     magic "LINBPSHD"
//   8       4     u32 version (matches the manifest)
//   12      4     u32 endian tag
//   16      8     i64 row_begin
//   24      8     i64 row_end
//   32      8     i64 nnz (this shard's stored entries)
//   40      8     i64 num_explicit (this shard's explicit nodes)
//   48      4     u32 flags (bit 0: ground-truth slice present;
//                            bit 1, v2 only: f32 value section)
//   52      4     u32 shard index
//   56      8     u64 FNV-1a checksum of the shard payload
//   64      ...   v1 payload:
//                   i64[rows + 1]       local row_ptr (rebased to 0)
//                   i32[nnz]            col_idx (GLOBAL column ids)
//                   f64[nnz]            values
//                   i64[num_explicit]   explicit node ids (global, sorted,
//                                       inside [row_begin, row_end))
//                   f64[num_explicit*k] explicit residual rows
//                   i32[rows]           ground truth slice (iff flag)
//
// A v2 payload replaces the row_ptr + col_idx sections with a
// delta+varint column section and optionally narrows the values:
//
//   64      ...   v2 payload:
//                   u64                 column-section byte count
//                   per row: varint     row entry count, then the row's
//                                       GLOBAL column ids — the first
//                                       raw, the rest as strictly
//                                       positive deltas (LEB128, max 5
//                                       bytes per varint)
//                   f64[nnz]|f32[nnz]   values (f32 iff flag bit 1; the
//                                       writer narrows once, so decoded
//                                       blocks feed the f32 kernels with
//                                       no second narrowing pass)
//                   ... explicit ids / rows / ground truth as in v1
//
// Sorted columns make the deltas small — most ids encode in 1-2 bytes
// instead of 4 — which cuts the bytes an out-of-core sweep re-reads
// from disk (the stream is bandwidth-bound, not FLOP-bound). Column
// encoding is lossless and f64 values are stored exactly, so v2/f64
// solves stay bit-identical to v1 and to in-memory; v2/f32 narrows each
// value once at write time, exactly matching the narrowing the f32
// kernel path applies to resident f64 graphs.
//
// LoadShardedSnapshot rejects every mismatch with a descriptive error,
// never a crash: bad magic/version/endianness, checksum failures at the
// manifest or shard level, shard headers disagreeing with their manifest
// entry, row-range gaps or overlaps, count mismatches, truncation,
// trailing bytes, missing shard files, and — via the shared global
// validation sweep — cross-shard asymmetry of the assembled adjacency.
// A successful load is bit-identical to loading the monolithic snapshot
// of the same scenario.

#ifndef LINBP_DATASET_SHARD_H_
#define LINBP_DATASET_SHARD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/dataset/scenario.h"
#include "src/exec/exec_context.h"

namespace linbp {
namespace dataset {

/// Format version of uncompressed sharded snapshots (the default).
inline constexpr std::uint32_t kShardFormatVersion = 1;

/// Format version of compressed (delta+varint column) sharded
/// snapshots; also the newest version the readers accept.
inline constexpr std::uint32_t kShardFormatVersionV2 = 2;

/// How ShardSnapshot encodes shard payloads.
enum class ShardCompression {
  kNone,  // v1: raw row_ptr/col_idx/f64 values
  kF64,   // v2: delta+varint columns, f64 values (lossless)
  kF32,   // v2: delta+varint columns, values narrowed to f32 at write
};

/// Sanity bound on the shard count a manifest may declare.
inline constexpr std::int64_t kMaxShards = 1 << 20;

/// File names ShardSnapshot produces inside its directory.
std::string ShardManifestFileName();
std::string ShardFileName(std::int64_t shard);

/// Where ShardSnapshot wrote, for callers that report or chain on it.
struct ShardWriteResult {
  std::string manifest_path;
  std::int64_t num_shards = 0;
};

/// Splits `scenario` into at most `max_shards` nnz-balanced row blocks
/// (exec::RowPartition::NnzBalanced over the CSR row pointers; fewer
/// shards when rows run out) and writes one shard file per block plus
/// the manifest into `dir` (created if missing). `compression` picks the
/// payload encoding: kNone writes format v1, kF64/kF32 write v2 (see
/// the layout comment above). Every file is flushed and close-checked
/// before success is reported; the manifest is written last. Returns
/// nullopt and fills *error on I/O failure or an unshardable scenario
/// (no nodes, max_shards out of [1, kMaxShards]).
std::optional<ShardWriteResult> ShardSnapshot(
    const Scenario& scenario, std::int64_t max_shards, const std::string& dir,
    std::string* error,
    ShardCompression compression = ShardCompression::kNone);

/// Loads a sharded snapshot back into a Scenario. Shard files are read
/// and deserialized in parallel on `ctx` (one task per shard, directly
/// into the assembled global arrays), then the shared structural
/// validation sweep runs once before the trusted
/// SparseMatrix::FromValidatedCsr / Graph::FromValidatedAdjacency adopt
/// paths — no serial re-validation pass. Returns nullopt and fills
/// *error on any corruption or manifest/shard mismatch.
std::optional<Scenario> LoadShardedSnapshot(const std::string& manifest_path,
                                            std::string* error,
                                            const exec::ExecContext& ctx =
                                                exec::ExecContext::Default());

/// One manifest shard entry, as reported by ReadShardManifestInfo.
struct ShardRangeInfo {
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  /// Declared on-disk payload bytes of this shard's file (header
  /// excluded): computed from the manifest counts for v1, read from the
  /// manifest entry for v2 — either way, file size minus 64.
  std::int64_t payload_bytes = 0;
  /// Bytes the shard occupies once decoded into resident CSR sections
  /// (== payload_bytes for v1; larger for compressed v2 shards).
  std::int64_t decoded_bytes = 0;
  std::string file;
};

/// Manifest fields, without reading any shard file.
struct ShardManifestInfo {
  std::uint32_t version = 0;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  bool has_ground_truth = false;
  /// v2 only: value sections are stored as f32.
  bool values_f32 = false;
  /// Size of the manifest file itself.
  std::int64_t file_bytes = 0;
  /// Sum of every shard's decoded payload bytes — what a full
  /// LoadShardedSnapshot must hold resident at once, so callers (e.g.
  /// `linbp_cli info`) can warn when a graph exceeds available RAM and
  /// should stream instead. For compressed manifests this is the
  /// decoded total, not the (smaller) on-disk one.
  std::int64_t total_shard_payload_bytes = 0;
  /// Sum of every shard's on-disk payload bytes (== the payload total
  /// above for v1; the compressed size for v2).
  std::int64_t total_encoded_payload_bytes = 0;
  std::string name;
  std::string spec;
  std::vector<ShardRangeInfo> shards;
};

/// Reads and fully validates the manifest (header, checksum, shard
/// table consistency); does not open the shard files.
std::optional<ShardManifestInfo> ReadShardManifestInfo(
    const std::string& path, std::string* error);

/// True when `path` exists and starts with the shard-manifest magic —
/// the dispatch test that lets the `snap:` scenario and `linbp_cli info`
/// accept monolithic snapshots and shard manifests interchangeably.
bool LooksLikeShardManifest(const std::string& path);

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_SHARD_H_
