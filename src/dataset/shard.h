// Sharded snapshots: one Scenario split into per-row-block shard files
// plus a checksummed manifest.
//
// The paper's scalability experiments (Sect. 7) run LinBP/SBP on graphs
// with hundreds of millions of edges — larger than one comfortably
// resident CSR. The linearized fixed-point iteration decomposes cleanly
// over contiguous row blocks, so the shard key is the same nnz-balanced
// exec::RowPartition the parallel kernels already split on: one shard =
// one row block, holding that block's slice of every Scenario section.
// Shards load in parallel on an ExecContext (one task per shard), which
// also makes the sharded format the seam for future out-of-core or
// distributed execution.
//
// On-disk layout. ShardSnapshot writes into a directory:
//
//   <dir>/manifest.lbpm        the manifest (written last, so a crashed
//                              writer never leaves a loadable manifest
//                              pointing at missing shards)
//   <dir>/shard-000000.lbpsd   shard 0 (rows [0, r1))
//   <dir>/shard-000001.lbpsd   shard 1 (rows [r1, r2))
//   ...
//
// Manifest file (little-endian, 64-byte header like snapshot.h):
//
//   offset  size  field
//   0       8     magic "LINBPSHM"
//   8       4     u32 version (currently 1)
//   12      4     u32 endian tag 0x01020304
//   16      8     i64 num_nodes
//   24      8     i64 k (classes)
//   32      8     i64 nnz (global stored adjacency entries)
//   40      8     i64 num_explicit (global)
//   48      4     u32 flags (bit 0: ground truth present)
//   52      4     u32 num_shards
//   56      8     u64 FNV-1a checksum of the manifest payload
//   64      ...   payload:
//                   u32 name length, name bytes
//                   u32 spec length, spec bytes
//                   f64[k*k] coupling residual (row-major)
//                   num_shards x shard entry:
//                     i64 row_begin, i64 row_end
//                     i64 nnz, i64 num_explicit
//                     u64 FNV-1a checksum of the shard's payload
//                     u32 file-name length, file-name bytes (relative
//                         to the manifest's directory)
//
// Shard file (64-byte header):
//
//   0       8     magic "LINBPSHD"
//   8       4     u32 version
//   12      4     u32 endian tag
//   16      8     i64 row_begin
//   24      8     i64 row_end
//   32      8     i64 nnz (this shard's stored entries)
//   40      8     i64 num_explicit (this shard's explicit nodes)
//   48      4     u32 flags (bit 0: ground-truth slice present)
//   52      4     u32 shard index
//   56      8     u64 FNV-1a checksum of the shard payload
//   64      ...   payload:
//                   i64[rows + 1]       local row_ptr (rebased to 0)
//                   i32[nnz]            col_idx (GLOBAL column ids)
//                   f64[nnz]            values
//                   i64[num_explicit]   explicit node ids (global, sorted,
//                                       inside [row_begin, row_end))
//                   f64[num_explicit*k] explicit residual rows
//                   i32[rows]           ground truth slice (iff flag)
//
// LoadShardedSnapshot rejects every mismatch with a descriptive error,
// never a crash: bad magic/version/endianness, checksum failures at the
// manifest or shard level, shard headers disagreeing with their manifest
// entry, row-range gaps or overlaps, count mismatches, truncation,
// trailing bytes, missing shard files, and — via the shared global
// validation sweep — cross-shard asymmetry of the assembled adjacency.
// A successful load is bit-identical to loading the monolithic snapshot
// of the same scenario.

#ifndef LINBP_DATASET_SHARD_H_
#define LINBP_DATASET_SHARD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/dataset/scenario.h"
#include "src/exec/exec_context.h"

namespace linbp {
namespace dataset {

/// Current sharded-snapshot format version (manifest and shard files).
inline constexpr std::uint32_t kShardFormatVersion = 1;

/// Sanity bound on the shard count a manifest may declare.
inline constexpr std::int64_t kMaxShards = 1 << 20;

/// File names ShardSnapshot produces inside its directory.
std::string ShardManifestFileName();
std::string ShardFileName(std::int64_t shard);

/// Where ShardSnapshot wrote, for callers that report or chain on it.
struct ShardWriteResult {
  std::string manifest_path;
  std::int64_t num_shards = 0;
};

/// Splits `scenario` into at most `max_shards` nnz-balanced row blocks
/// (exec::RowPartition::NnzBalanced over the CSR row pointers; fewer
/// shards when rows run out) and writes one shard file per block plus
/// the manifest into `dir` (created if missing). Every file is flushed
/// and close-checked before success is reported; the manifest is written
/// last. Returns nullopt and fills *error on I/O failure or an
/// unshardable scenario (no nodes, max_shards out of [1, kMaxShards]).
std::optional<ShardWriteResult> ShardSnapshot(const Scenario& scenario,
                                              std::int64_t max_shards,
                                              const std::string& dir,
                                              std::string* error);

/// Loads a sharded snapshot back into a Scenario. Shard files are read
/// and deserialized in parallel on `ctx` (one task per shard, directly
/// into the assembled global arrays), then the shared structural
/// validation sweep runs once before the trusted
/// SparseMatrix::FromValidatedCsr / Graph::FromValidatedAdjacency adopt
/// paths — no serial re-validation pass. Returns nullopt and fills
/// *error on any corruption or manifest/shard mismatch.
std::optional<Scenario> LoadShardedSnapshot(const std::string& manifest_path,
                                            std::string* error,
                                            const exec::ExecContext& ctx =
                                                exec::ExecContext::Default());

/// One manifest shard entry, as reported by ReadShardManifestInfo.
struct ShardRangeInfo {
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  /// Declared payload bytes of this shard's file (header excluded),
  /// computed from the manifest counts without opening the file.
  std::int64_t payload_bytes = 0;
  std::string file;
};

/// Manifest fields, without reading any shard file.
struct ShardManifestInfo {
  std::uint32_t version = 0;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  bool has_ground_truth = false;
  /// Size of the manifest file itself.
  std::int64_t file_bytes = 0;
  /// Sum of every shard's declared payload bytes — what a full
  /// LoadShardedSnapshot must hold resident at once, so callers (e.g.
  /// `linbp_cli info`) can warn when a graph exceeds available RAM and
  /// should stream instead.
  std::int64_t total_shard_payload_bytes = 0;
  std::string name;
  std::string spec;
  std::vector<ShardRangeInfo> shards;
};

/// Reads and fully validates the manifest (header, checksum, shard
/// table consistency); does not open the shard files.
std::optional<ShardManifestInfo> ReadShardManifestInfo(
    const std::string& path, std::string* error);

/// True when `path` exists and starts with the shard-manifest magic —
/// the dispatch test that lets the `snap:` scenario and `linbp_cli info`
/// accept monolithic snapshots and shard manifests interchangeably.
bool LooksLikeShardManifest(const std::string& path);

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_SHARD_H_
