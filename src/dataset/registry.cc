#include "src/dataset/registry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "src/dataset/shard.h"
#include "src/dataset/snapshot.h"
#include "src/dataset/workloads.h"
#include "src/graph/beliefs.h"
#include "src/graph/dblp.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/util/check.h"

namespace linbp {
namespace dataset {
namespace {

struct Entry {
  ScenarioInfo info;
  ScenarioFactory factory;
};

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, Entry>& Registry() {
  static std::map<std::string, Entry> registry;
  return registry;
}

// Synthetic generators build int32-indexed CSR graphs in memory; far
// larger requests are almost certainly spec typos.
constexpr std::int64_t kMaxSyntheticNodes = 50'000'000;

// Shared validation of the seeding knobs every synthetic factory takes.
bool ValidateSeeding(double labeled, double belief, double strength,
                     const char* name, std::string* error) {
  if (labeled < 0.0 || labeled > 1.0) {
    *error = std::string(name) + ": labeled must be in [0, 1]";
    return false;
  }
  if (!(belief > 0.0) || belief > 1.0) {
    *error = std::string(name) + ": belief must be in (0, 1]";
    return false;
  }
  if (!(strength > 0.0) || !std::isfinite(strength)) {
    *error = std::string(name) + ": strength must be positive";
    return false;
  }
  return true;
}

// ---- Built-in factories -------------------------------------------------

std::optional<Scenario> MakeSbm(ScenarioParams& params,
                                const exec::ExecContext& /*ctx*/,
                                std::string* error) {
  const std::int64_t n = params.Int("n", 3000);
  const std::int64_t k = params.Int("k", 3);
  const double deg = params.Double("deg", 8.0);
  const std::string mode = params.Str("mode", "homophily");
  const bool homophily = mode == "homophily";
  if (!homophily && mode != "heterophily") {
    *error = "sbm: mode must be homophily or heterophily, got '" + mode + "'";
    return std::nullopt;
  }
  // In the homophily regime edges stay inside a class; in the heterophily
  // regime they cross classes — matching the sign of the coupling below.
  const double mix = params.Double("mix", homophily ? 0.85 : 0.05);
  const double strength =
      params.Double("strength", 0.5 / static_cast<double>(k));
  const double labeled = params.Double("labeled", 0.05);
  const double belief = params.Double("belief", 0.5);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.Int("seed", 1));
  if (n < 2 * k || k < 2) {
    *error = "sbm: requires k >= 2 and n >= 2k";
    return std::nullopt;
  }
  if (mix < 0.0 || mix > 1.0) {
    *error = "sbm: mix must be in [0, 1]";
    return std::nullopt;
  }
  if (n > kMaxSyntheticNodes) {
    *error = "sbm: n exceeds the synthetic-generator cap";
    return std::nullopt;
  }
  if (!(deg > 0.0) || deg > 1e4) {
    *error = "sbm: deg must be in (0, 1e4]";
    return std::nullopt;
  }
  if (!ValidateSeeding(labeled, belief, strength, "sbm", error)) {
    return std::nullopt;
  }
  LabeledGraph lg = SbmGraph(n, k, deg, mix, seed);
  Scenario scenario;
  scenario.graph = std::move(lg.graph);
  scenario.k = k;
  scenario.coupling_residual =
      homophily ? UniformHomophilyCoupling(k, strength).residual()
                : UniformHeterophilyResidual(k, strength);
  scenario.ground_truth = std::move(lg.labels);
  RevealGroundTruth(labeled, belief, seed + 1, &scenario);
  return scenario;
}

std::optional<Scenario> MakeRmat(ScenarioParams& params,
                                const exec::ExecContext& /*ctx*/,
                                std::string* error) {
  const std::int64_t scale = params.Int("scale", 11);
  const double ef = params.Double("ef", 8.0);
  const std::int64_t k = params.Int("k", 3);
  const double a = params.Double("a", 0.57);
  const double b = params.Double("b", 0.19);
  const double c = params.Double("c", 0.19);
  const double strength =
      params.Double("strength", 0.5 / static_cast<double>(k));
  const double labeled = params.Double("labeled", 0.05);
  const double belief = params.Double("belief", 0.5);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.Int("seed", 1));
  if (scale < 1 || scale > 30) {
    *error = "rmat: scale must be in [1, 30]";
    return std::nullopt;
  }
  if (k < 2) {
    *error = "rmat: requires k >= 2";
    return std::nullopt;
  }
  if (!(a > 0.0) || b < 0.0 || c < 0.0 || a + b + c >= 1.0) {
    *error = "rmat: quadrant probabilities need a > 0, b, c >= 0, "
             "a + b + c < 1";
    return std::nullopt;
  }
  if (!(ef > 0.0) || ef > 1e4) {
    *error = "rmat: ef must be in (0, 1e4]";
    return std::nullopt;
  }
  if (!ValidateSeeding(labeled, belief, strength, "rmat", error)) {
    return std::nullopt;
  }
  LabeledGraph lg = RmatGraph(static_cast<int>(scale), ef, k, a, b, c, seed);
  Scenario scenario;
  scenario.graph = std::move(lg.graph);
  scenario.k = k;
  scenario.coupling_residual = UniformHomophilyCoupling(k, strength).residual();
  scenario.ground_truth = std::move(lg.labels);
  RevealGroundTruth(labeled, belief, seed + 1, &scenario);
  return scenario;
}

std::optional<Scenario> MakeFraud(ScenarioParams& params,
                                const exec::ExecContext& /*ctx*/,
                                std::string* error) {
  const std::int64_t users = params.Int("users", 800);
  const std::int64_t products = params.Int("products", 400);
  const double fraud = params.Double("fraud", 0.15);
  const double shill = params.Double("shill", 0.10);
  const double reviews = params.Double("reviews", 5.0);
  const double camouflage = params.Double("camouflage", 0.1);
  const double labeled = params.Double("labeled", 0.15);
  const double belief = params.Double("belief", 0.3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.Int("seed", 7));
  if (users < 2 || products < 2) {
    *error = "fraud: requires users >= 2 and products >= 2";
    return std::nullopt;
  }
  if (fraud <= 0.0 || fraud >= 1.0 || shill <= 0.0 || shill >= 1.0) {
    *error = "fraud: fraud and shill fractions must be in (0, 1)";
    return std::nullopt;
  }
  if (users > kMaxSyntheticNodes || products > kMaxSyntheticNodes) {
    *error = "fraud: node counts exceed the synthetic-generator cap";
    return std::nullopt;
  }
  if (!(reviews > 0.0) || reviews > 1e4) {
    *error = "fraud: reviews must be in (0, 1e4]";
    return std::nullopt;
  }
  if (camouflage < 0.0 || camouflage > 1.0) {
    *error = "fraud: camouflage must be in [0, 1]";
    return std::nullopt;
  }
  if (!ValidateSeeding(labeled, belief, /*strength=*/1.0, "fraud", error)) {
    return std::nullopt;
  }
  LabeledGraph lg = FraudBipartiteGraph(users, products, fraud, shill,
                                        reviews, camouflage, seed);
  Scenario scenario;
  scenario.graph = std::move(lg.graph);
  scenario.k = 3;
  scenario.coupling_residual = AuctionCoupling().residual();
  scenario.ground_truth = std::move(lg.labels);
  RevealGroundTruth(labeled, belief, seed + 1, &scenario);
  return scenario;
}

std::optional<Scenario> MakeDblp(ScenarioParams& params,
                                const exec::ExecContext& /*ctx*/,
                                std::string* error) {
  DblpConfig config;
  // Defaults are test/bench sized; pass the full counts for paper scale.
  config.num_papers = params.Int("papers", 1200);
  config.num_authors = params.Int("authors", 1300);
  config.num_conferences = params.Int("conferences", 12);
  config.num_terms = params.Int("terms", 600);
  config.labeled_fraction = params.Double("labeled", 0.104);
  config.seed = static_cast<std::uint64_t>(params.Int("seed", 42));
  const double belief = params.Double("belief", 0.5);
  if (config.num_papers < 1 || config.num_authors < 1 ||
      config.num_conferences < 1 || config.num_terms < 1) {
    *error = "dblp: all node counts must be >= 1";
    return std::nullopt;
  }
  const std::int64_t total = config.num_papers + config.num_authors +
                             config.num_conferences + config.num_terms;
  if (total > kMaxSyntheticNodes) {
    *error = "dblp: node counts exceed the synthetic-generator cap";
    return std::nullopt;
  }
  // Only papers, authors, and conferences can carry labels; a fraction
  // demanding more would spin the generator's sampling loop forever.
  const std::int64_t labelable =
      config.num_papers + config.num_authors + config.num_conferences;
  if (config.labeled_fraction < 0.0 ||
      std::llround(config.labeled_fraction * static_cast<double>(total)) >
          labelable) {
    *error = "dblp: labeled fraction exceeds the labelable "
             "papers+authors+conferences share";
    return std::nullopt;
  }
  if (!(belief > 0.0) || belief > 1.0) {
    *error = "dblp: belief must be in (0, 1]";
    return std::nullopt;
  }
  DblpGraph dblp = MakeSyntheticDblp(config);
  Scenario scenario;
  scenario.k = dblp.num_classes;
  scenario.coupling_residual = DblpCoupling().residual();
  scenario.ground_truth = std::move(dblp.node_class);
  scenario.explicit_residuals =
      DenseMatrix(dblp.graph.num_nodes(), scenario.k);
  for (const std::int64_t v : dblp.labeled_nodes) {
    const int cls = scenario.ground_truth[v];
    if (cls < 0) continue;
    const std::vector<double> row =
        ExplicitResidualForClass(scenario.k, cls, belief);
    for (std::int64_t c = 0; c < scenario.k; ++c) {
      scenario.explicit_residuals.At(v, c) = row[c];
    }
    scenario.explicit_nodes.push_back(v);
  }
  scenario.graph = std::move(dblp.graph);
  return scenario;
}

std::optional<Scenario> MakeKronecker(ScenarioParams& params,
                                const exec::ExecContext& /*ctx*/,
                                std::string* error) {
  const std::int64_t g = params.Int("g", 2);
  const double labeled = params.Double("labeled", 0.05);
  const std::int64_t extra_digits = params.Int("extra-digits", 0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.Int("seed", 1));
  if (g < 1 || g > 9) {
    *error = "kronecker: g must be a paper graph index in [1, 9]";
    return std::nullopt;
  }
  if (labeled < 0.0 || labeled > 1.0) {
    *error = "kronecker: labeled must be in [0, 1]";
    return std::nullopt;
  }
  if (extra_digits < 0 || extra_digits > 10) {
    *error = "kronecker: extra-digits must be in [0, 10]";
    return std::nullopt;
  }
  Scenario scenario;
  scenario.graph = KroneckerPowerGraph(KroneckerPowerForPaperIndex(
      static_cast<int>(g)));
  scenario.k = 3;
  scenario.coupling_residual = KroneckerExperimentCoupling().residual();
  const std::int64_t n = scenario.graph.num_nodes();
  const std::int64_t num_explicit = std::max<std::int64_t>(
      1, std::llround(labeled * static_cast<double>(n)));
  SeededBeliefs seeds = SeedPaperBeliefs(n, scenario.k, num_explicit, seed,
                                         static_cast<int>(extra_digits));
  scenario.explicit_residuals = std::move(seeds.residuals);
  scenario.explicit_nodes = std::move(seeds.explicit_nodes);
  // The paper's synthetic experiment has no planted truth: quality is
  // measured as agreement between methods.
  return scenario;
}

std::optional<Scenario> MakeFile(ScenarioParams& params,
                                const exec::ExecContext& /*ctx*/,
                                std::string* error) {
  const std::string graph_path = params.Str("graph", "");
  const std::string beliefs_path = params.Str("beliefs", "");
  const std::string labels_path = params.Str("labels", "");
  const std::string coupling_spec = params.Str("coupling", "homophily2");
  const std::int64_t k_param = params.Int("k", 0);
  const std::int64_t hint = params.Int("hint", 0);
  if (graph_path.empty() || beliefs_path.empty()) {
    *error = "file: requires graph=PATH and beliefs=PATH";
    return std::nullopt;
  }
  const auto coupling = ResolveCouplingSpec(coupling_spec, error);
  if (!coupling.has_value()) return std::nullopt;
  if (k_param > 0 && k_param != coupling->k()) {
    *error = "file: k disagrees with the coupling matrix size";
    return std::nullopt;
  }
  auto graph = ReadEdgeList(graph_path, error, hint);
  if (!graph.has_value()) return std::nullopt;
  auto beliefs =
      ReadBeliefs(beliefs_path, graph->num_nodes(), coupling->k(), error);
  if (!beliefs.has_value()) return std::nullopt;
  Scenario scenario;
  scenario.k = coupling->k();
  scenario.coupling_residual = coupling->residual();
  scenario.explicit_residuals = std::move(beliefs->residuals);
  scenario.explicit_nodes = std::move(beliefs->explicit_nodes);
  if (!labels_path.empty()) {
    auto labels =
        ReadLabels(labels_path, graph->num_nodes(), scenario.k, error);
    if (!labels.has_value()) return std::nullopt;
    scenario.ground_truth = std::move(*labels);
  }
  scenario.graph = std::move(*graph);
  return scenario;
}

std::optional<Scenario> MakeSnap(ScenarioParams& params,
                                const exec::ExecContext& ctx,
                                std::string* error) {
  const std::string path = params.Str("path", "");
  if (path.empty()) {
    *error = "snap: requires path=FILE";
    return std::nullopt;
  }
  // Monolithic snapshots and shard manifests share the spec: the file's
  // magic decides which loader runs (sharded loads fan out over ctx).
  if (LooksLikeShardManifest(path)) {
    return LoadShardedSnapshot(path, error, ctx);
  }
  return LoadSnapshot(path, error, ctx);
}

void EnsureBuiltinsLocked() {
  static bool registered = false;
  if (registered) return;
  registered = true;
  auto add = [](const char* name, const char* description,
                const char* params_help, ScenarioFactory factory) {
    Registry()[name] = Entry{{name, description, params_help},
                             std::move(factory)};
  };
  add("sbm",
      "planted-partition stochastic block model (homophily or heterophily)",
      "n=3000,k=3,deg=8,mode=homophily,mix=<by mode>,strength=0.5/k,"
      "labeled=0.05,belief=0.5,seed=1",
      MakeSbm);
  add("rmat", "power-law R-MAT graph with BFS-Voronoi planted labels",
      "scale=11,ef=8,k=3,a=0.57,b=0.19,c=0.19,strength=0.5/k,labeled=0.05,"
      "belief=0.5,seed=1",
      MakeRmat);
  add("fraud",
      "bipartite reviewer/product fraud network (auction coupling roles)",
      "users=800,products=400,fraud=0.15,shill=0.1,reviews=5,"
      "camouflage=0.1,labeled=0.15,belief=0.3,seed=7",
      MakeFraud);
  add("dblp", "synthetic DBLP heterogeneous network (4 classes)",
      "papers=1200,authors=1300,conferences=12,terms=600,labeled=0.104,"
      "belief=0.5,seed=42",
      MakeDblp);
  add("kronecker",
      "the paper's Fig. 6a Kronecker family with Sect. 7 seeding",
      "g=2,labeled=0.05,extra-digits=0,seed=1", MakeKronecker);
  add("file", "edge list + beliefs (+ optional labels) from text files",
      "graph=PATH,beliefs=PATH,labels=,coupling=homophily2,k=0,hint=0",
      MakeFile);
  add("snap",
      "binary graph snapshot or shard manifest (src/dataset/snapshot.h, "
      "shard.h)",
      "path=FILE", MakeSnap);
}

}  // namespace

void RegisterScenario(const ScenarioInfo& info, ScenarioFactory factory) {
  LINBP_CHECK(!info.name.empty());
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltinsLocked();
  Registry()[info.name] = Entry{info, std::move(factory)};
}

std::vector<ScenarioInfo> ListScenarios() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureBuiltinsLocked();
  std::vector<ScenarioInfo> infos;
  infos.reserve(Registry().size());
  for (const auto& [name, entry] : Registry()) infos.push_back(entry.info);
  return infos;
}

std::optional<Scenario> MakeScenario(const std::string& spec,
                                     std::string* error,
                                     const exec::ExecContext& ctx) {
  LINBP_CHECK(error != nullptr);
  error->clear();
  auto parsed = ParseScenarioSpec(spec, error);
  if (!parsed.has_value()) return std::nullopt;
  ScenarioFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    EnsureBuiltinsLocked();
    const auto it = Registry().find(parsed->name);
    if (it == Registry().end()) {
      std::string known;
      for (const auto& [name, entry] : Registry()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      *error = "unknown scenario '" + parsed->name + "' (known: " + known +
               ")";
      return std::nullopt;
    }
    factory = it->second.factory;
  }
  auto scenario = factory(parsed->params, ctx, error);
  if (!scenario.has_value()) {
    if (error->empty()) *error = parsed->name + ": scenario build failed";
    return std::nullopt;
  }
  if (!parsed->params.value_error().empty()) {
    *error = parsed->name + ": " + parsed->params.value_error();
    return std::nullopt;
  }
  const std::vector<std::string> unknown = parsed->params.UnconsumedKeys();
  if (!unknown.empty()) {
    *error = "unknown parameter '" + unknown.front() + "' for scenario '" +
             parsed->name + "'";
    return std::nullopt;
  }
  if (scenario->name.empty()) scenario->name = parsed->name;
  if (scenario->spec.empty()) scenario->spec = spec;
  return scenario;
}

}  // namespace dataset
}  // namespace linbp
