#include "src/dataset/update_stream.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/util/check.h"
#include "src/util/random.h"

namespace linbp {
namespace dataset {
namespace {

// Strict token parses in the io.cc tradition: the whole token must
// convert, and non-finite values get their own message downstream.
bool ParseDoubleToken(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return !token.empty() && *end == '\0';
}

bool ParseInt64Token(const std::string& token, std::int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (*end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string EdgeKey(std::int64_t u, std::int64_t v) {
  return "(" + std::to_string(std::min(u, v)) + ", " +
         std::to_string(std::max(u, v)) + ")";
}

}  // namespace

bool IsUpdateStreamComment(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseUpdateLine(const std::string& line, std::int64_t expected_k,
                     UpdateOp* op, std::string* error) {
  LINBP_CHECK(op != nullptr && error != nullptr);
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    *error = "empty update line";
    return false;
  }
  const std::string& command = tokens[0];
  UpdateOp parsed;
  if (command == "a" || command == "d" || command == "w") {
    const bool has_weight = command != "d";
    const std::size_t expected_fields = has_weight ? 4 : 3;
    if (tokens.size() != expected_fields) {
      *error = "expected '" + command + " u v" +
               std::string(has_weight ? " w" : "") + "', got " +
               std::to_string(tokens.size()) + " fields";
      return false;
    }
    if (!ParseInt64Token(tokens[1], &parsed.u) ||
        !ParseInt64Token(tokens[2], &parsed.v)) {
      *error = "malformed node id in '" + line + "'";
      return false;
    }
    if (has_weight) {
      if (!ParseDoubleToken(tokens[3], &parsed.weight)) {
        *error = "malformed weight token '" + tokens[3] + "'";
        return false;
      }
      if (!std::isfinite(parsed.weight)) {
        *error = "non-finite weight in '" + line + "'";
        return false;
      }
    }
    parsed.kind = command == "a"   ? UpdateKind::kAddEdge
                  : command == "d" ? UpdateKind::kDeleteEdge
                                   : UpdateKind::kReweightEdge;
  } else if (command == "b") {
    if (tokens.size() < 3) {
      *error = "expected 'b node k r_1 ... r_k'";
      return false;
    }
    std::int64_t k = 0;
    if (!ParseInt64Token(tokens[1], &parsed.u) ||
        !ParseInt64Token(tokens[2], &k)) {
      *error = "malformed node id or class count in '" + line + "'";
      return false;
    }
    if (k < 2) {
      *error = "belief update must carry k >= 2 classes, got " +
               std::to_string(k);
      return false;
    }
    if (expected_k > 0 && k != expected_k) {
      *error = "belief update carries " + std::to_string(k) +
               " classes but the problem has " + std::to_string(expected_k);
      return false;
    }
    if (static_cast<std::int64_t>(tokens.size()) != 3 + k) {
      *error = "belief update declares " + std::to_string(k) +
               " classes but carries " + std::to_string(tokens.size() - 3) +
               " residuals";
      return false;
    }
    parsed.residuals.resize(static_cast<std::size_t>(k));
    for (std::int64_t c = 0; c < k; ++c) {
      const std::string& token = tokens[static_cast<std::size_t>(3 + c)];
      if (!ParseDoubleToken(token, &parsed.residuals[c])) {
        *error = "malformed residual token '" + token + "'";
        return false;
      }
      if (!std::isfinite(parsed.residuals[c])) {
        *error = "non-finite residual in '" + line + "'";
        return false;
      }
    }
    parsed.kind = UpdateKind::kBeliefUpdate;
  } else {
    *error = "unknown update command '" + command +
             "' (expected a, d, w, or b)";
    return false;
  }
  *op = std::move(parsed);
  return true;
}

std::optional<std::vector<UpdateOp>> ReadUpdateStream(
    const std::string& path, std::int64_t expected_k, std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  std::vector<UpdateOp> ops;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (IsUpdateStreamComment(line)) continue;
    UpdateOp op;
    std::string problem;
    if (!ParseUpdateLine(line, expected_k, &op, &problem)) {
      *error = path + ":" + std::to_string(line_number) + ": " + problem;
      return std::nullopt;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string FormatUpdateOp(const UpdateOp& op) {
  char buffer[64];
  std::ostringstream out;
  auto append_double = [&](double value) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out << ' ' << buffer;
  };
  switch (op.kind) {
    case UpdateKind::kAddEdge:
      out << "a " << op.u << ' ' << op.v;
      append_double(op.weight);
      break;
    case UpdateKind::kDeleteEdge:
      out << "d " << op.u << ' ' << op.v;
      break;
    case UpdateKind::kReweightEdge:
      out << "w " << op.u << ' ' << op.v;
      append_double(op.weight);
      break;
    case UpdateKind::kBeliefUpdate:
      out << "b " << op.u << ' ' << op.residuals.size();
      for (const double r : op.residuals) append_double(r);
      break;
  }
  return out.str();
}

bool WriteUpdateStream(const std::vector<UpdateOp>& ops,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# update stream: a u v w | d u v | w u v w | b node k r_1..r_k ("
      << ops.size() << " ops)\n";
  for (const UpdateOp& op : ops) out << FormatUpdateOp(op) << '\n';
  return static_cast<bool>(out);
}

int ApplyUpdateOp(const UpdateOp& op, LinBpState* state,
                  std::string* error) {
  LINBP_CHECK(state != nullptr);
  switch (op.kind) {
    case UpdateKind::kAddEdge:
      return state->AddEdges({{op.u, op.v, op.weight}}, error);
    case UpdateKind::kDeleteEdge:
      return state->RemoveEdges({{op.u, op.v, 1.0}}, error);
    case UpdateKind::kReweightEdge:
      return state->UpdateEdgeWeights({{op.u, op.v, op.weight}}, error);
    case UpdateKind::kBeliefUpdate: {
      DenseMatrix row(1, static_cast<std::int64_t>(op.residuals.size()));
      for (std::size_t c = 0; c < op.residuals.size(); ++c) {
        row.At(0, static_cast<std::int64_t>(c)) = op.residuals[c];
      }
      return state->UpdateExplicitBeliefs({op.u}, row, error);
    }
  }
  LINBP_CHECK_MSG(false, "unreachable update kind");
  return -1;
}

int ApplyUpdateOp(const UpdateOp& op, SbpState* state, std::string* error) {
  LINBP_CHECK(state != nullptr);
  switch (op.kind) {
    case UpdateKind::kAddEdge:
      return state->AddEdges({{op.u, op.v, op.weight}}, error);
    case UpdateKind::kDeleteEdge:
      return state->RemoveEdges({{op.u, op.v, 1.0}}, error);
    case UpdateKind::kReweightEdge:
      return state->UpdateEdgeWeights({{op.u, op.v, op.weight}}, error);
    case UpdateKind::kBeliefUpdate: {
      DenseMatrix row(1, static_cast<std::int64_t>(op.residuals.size()));
      for (std::size_t c = 0; c < op.residuals.size(); ++c) {
        row.At(0, static_cast<std::int64_t>(c)) = op.residuals[c];
      }
      return state->AddExplicitBeliefs({op.u}, row, error);
    }
  }
  LINBP_CHECK_MSG(false, "unreachable update kind");
  return -1;
}

bool ApplyUpdateOpsToProblem(const std::vector<UpdateOp>& ops,
                             std::int64_t num_nodes,
                             std::vector<Edge>* edges,
                             DenseMatrix* residuals, std::string* error) {
  LINBP_CHECK(edges != nullptr && residuals != nullptr && error != nullptr);
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> index;
  for (std::size_t i = 0; i < edges->size(); ++i) {
    const Edge& e = (*edges)[i];
    index[{std::min(e.u, e.v), std::max(e.u, e.v)}] = i;
  }
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateKind::kBeliefUpdate) {
      if (op.u < 0 || op.u >= num_nodes) {
        *error = "belief update names node " + std::to_string(op.u) +
                 " outside [0, " + std::to_string(num_nodes) + ")";
        return false;
      }
      if (static_cast<std::int64_t>(op.residuals.size()) !=
          residuals->cols()) {
        *error = "belief update carries " +
                 std::to_string(op.residuals.size()) +
                 " classes but the problem has " +
                 std::to_string(residuals->cols());
        return false;
      }
      for (std::size_t c = 0; c < op.residuals.size(); ++c) {
        residuals->At(op.u, static_cast<std::int64_t>(c)) = op.residuals[c];
      }
      continue;
    }
    if (op.u < 0 || op.u >= num_nodes || op.v < 0 || op.v >= num_nodes ||
        op.u == op.v) {
      *error = "edge op names invalid endpoints " + EdgeKey(op.u, op.v);
      return false;
    }
    const std::pair<std::int64_t, std::int64_t> key{std::min(op.u, op.v),
                                                    std::max(op.u, op.v)};
    const auto it = index.find(key);
    switch (op.kind) {
      case UpdateKind::kAddEdge:
        if (it != index.end()) {
          *error = "edge " + EdgeKey(op.u, op.v) + " already exists";
          return false;
        }
        if (!std::isfinite(op.weight)) {
          *error = "edge " + EdgeKey(op.u, op.v) + " has a non-finite weight";
          return false;
        }
        index[key] = edges->size();
        edges->push_back({key.first, key.second, op.weight});
        break;
      case UpdateKind::kDeleteEdge: {
        if (it == index.end()) {
          *error = "edge " + EdgeKey(op.u, op.v) + " does not exist";
          return false;
        }
        const std::size_t pos = it->second;
        index.erase(it);
        const Edge moved = edges->back();
        edges->pop_back();
        if (pos < edges->size()) {
          (*edges)[pos] = moved;
          index[{moved.u, moved.v}] = pos;
        }
        break;
      }
      case UpdateKind::kReweightEdge:
        if (it == index.end()) {
          *error = "edge " + EdgeKey(op.u, op.v) + " does not exist";
          return false;
        }
        if (!std::isfinite(op.weight)) {
          *error = "edge " + EdgeKey(op.u, op.v) + " has a non-finite weight";
          return false;
        }
        (*edges)[it->second].weight = op.weight;
        break;
      case UpdateKind::kBeliefUpdate:
        break;  // handled above
    }
  }
  return true;
}

UpdateTrace GenerateUpdateTrace(const Scenario& scenario,
                                const UpdateTraceOptions& options) {
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 17);
  const std::vector<Edge>& all_edges = scenario.graph.edges();
  const std::int64_t num_ops = std::max<std::int64_t>(options.num_ops, 0);

  // Hold out the edges the trace will re-add: at most a quarter of the
  // graph, so the warm-start graph stays representative.
  std::int64_t num_adds = static_cast<std::int64_t>(
      std::llround(options.add_fraction * static_cast<double>(num_ops)));
  num_adds = std::min<std::int64_t>(
      num_adds, static_cast<std::int64_t>(all_edges.size()) / 4);
  std::vector<std::size_t> order(all_edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  std::vector<Edge> held_out;
  UpdateTrace trace;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Edge& e = all_edges[order[i]];
    if (static_cast<std::int64_t>(held_out.size()) < num_adds) {
      held_out.push_back(e);
    } else {
      trace.start_edges.push_back(e);
    }
  }

  // Plan the op kinds, then realize them in a shuffled order, falling
  // back (remove -> reweight -> add -> belief) when a pool runs dry.
  std::int64_t num_removes = static_cast<std::int64_t>(
      std::llround(options.remove_fraction * static_cast<double>(num_ops)));
  std::int64_t num_reweights = static_cast<std::int64_t>(std::llround(
      options.reweight_fraction * static_cast<double>(num_ops)));
  num_removes = std::min(num_removes, num_ops - num_adds);
  num_reweights = std::min(num_reweights, num_ops - num_adds - num_removes);
  std::vector<UpdateKind> kinds;
  kinds.insert(kinds.end(), static_cast<std::size_t>(num_adds),
               UpdateKind::kAddEdge);
  kinds.insert(kinds.end(), static_cast<std::size_t>(num_removes),
               UpdateKind::kDeleteEdge);
  kinds.insert(kinds.end(), static_cast<std::size_t>(num_reweights),
               UpdateKind::kReweightEdge);
  kinds.insert(kinds.end(),
               static_cast<std::size_t>(num_ops - num_adds - num_removes -
                                        num_reweights),
               UpdateKind::kBeliefUpdate);
  for (std::size_t i = kinds.size(); i > 1; --i) {
    std::swap(kinds[i - 1], kinds[rng.NextBounded(i)]);
  }

  std::vector<Edge> current = trace.start_edges;
  std::size_t next_add = 0;
  const std::int64_t k = scenario.k;
  for (UpdateKind kind : kinds) {
    // Feasibility fallbacks keep every op valid at its replay position.
    if (kind == UpdateKind::kAddEdge && next_add >= held_out.size()) {
      kind = UpdateKind::kReweightEdge;
    }
    if ((kind == UpdateKind::kDeleteEdge ||
         kind == UpdateKind::kReweightEdge) &&
        current.empty()) {
      kind = next_add < held_out.size() ? UpdateKind::kAddEdge
                                        : UpdateKind::kBeliefUpdate;
    }
    if (kind == UpdateKind::kBeliefUpdate &&
        scenario.explicit_nodes.empty()) {
      if (!current.empty()) {
        kind = UpdateKind::kReweightEdge;
      } else if (next_add < held_out.size()) {
        kind = UpdateKind::kAddEdge;
      } else {
        continue;  // nothing valid to emit
      }
    }
    UpdateOp op;
    switch (kind) {
      case UpdateKind::kAddEdge: {
        const Edge& e = held_out[next_add++];
        op.kind = UpdateKind::kAddEdge;
        op.u = e.u;
        op.v = e.v;
        op.weight = e.weight;
        current.push_back(e);
        break;
      }
      case UpdateKind::kDeleteEdge: {
        const std::size_t pick = rng.NextBounded(current.size());
        op.kind = UpdateKind::kDeleteEdge;
        op.u = current[pick].u;
        op.v = current[pick].v;
        current[pick] = current.back();
        current.pop_back();
        break;
      }
      case UpdateKind::kReweightEdge: {
        const std::size_t pick = rng.NextBounded(current.size());
        op.kind = UpdateKind::kReweightEdge;
        op.u = current[pick].u;
        op.v = current[pick].v;
        op.weight = options.min_weight +
                    (options.max_weight - options.min_weight) *
                        rng.NextDouble();
        current[pick].weight = op.weight;
        break;
      }
      case UpdateKind::kBeliefUpdate: {
        const std::size_t pick =
            rng.NextBounded(scenario.explicit_nodes.size());
        op.kind = UpdateKind::kBeliefUpdate;
        op.u = scenario.explicit_nodes[pick];
        op.residuals.resize(static_cast<std::size_t>(k));
        double mean = 0.0;
        for (std::int64_t c = 0; c < k; ++c) {
          op.residuals[static_cast<std::size_t>(c)] =
              0.2 * (rng.NextDouble() - 0.5);
          mean += op.residuals[static_cast<std::size_t>(c)];
        }
        mean /= static_cast<double>(k);
        bool nonzero = false;
        for (std::int64_t c = 0; c < k; ++c) {
          op.residuals[static_cast<std::size_t>(c)] -= mean;
          if (op.residuals[static_cast<std::size_t>(c)] != 0.0) {
            nonzero = true;
          }
        }
        if (!nonzero) {
          // Keep the node explicit: a zero row would un-label it.
          op.residuals[0] = 0.05;
          op.residuals[1] = -0.05;
        }
        break;
      }
    }
    trace.ops.push_back(std::move(op));
  }
  return trace;
}

}  // namespace dataset
}  // namespace linbp
