// Line-oriented update streams: the serialized form of live graph churn.
//
// A stream is a text file of one update per line (comments and blank
// lines ignored):
//
//   a u v w                  add undirected edge (u, v) with weight w
//   d u v                    delete undirected edge (u, v)
//   w u v w                  overwrite the weight of edge (u, v) with w
//   b node k r_1 ... r_k     overwrite node's explicit residual beliefs
//
// The parser is strict in the io.cc tradition: every token must convert
// completely, non-finite values are rejected with a specific message, and
// a malformed line is an error return — never an abort and never a
// partially applied update. Replay (ApplyUpdateOp) drives the warm
// incremental states in src/core; GenerateUpdateTrace manufactures valid
// mixed traces from a scenario for benchmarks and CI.

#ifndef LINBP_DATASET_UPDATE_STREAM_H_
#define LINBP_DATASET_UPDATE_STREAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/linbp_incremental.h"
#include "src/core/sbp_incremental.h"
#include "src/dataset/scenario.h"
#include "src/graph/graph.h"
#include "src/la/dense_matrix.h"

namespace linbp {
namespace dataset {

/// The four update kinds of the stream grammar.
enum class UpdateKind { kAddEdge, kDeleteEdge, kReweightEdge, kBeliefUpdate };

/// One parsed update.
struct UpdateOp {
  UpdateKind kind = UpdateKind::kAddEdge;
  /// Edge endpoints; `u` doubles as the node id of a belief update.
  std::int64_t u = 0;
  std::int64_t v = 0;
  /// New weight for kAddEdge / kReweightEdge.
  double weight = 1.0;
  /// k residual beliefs for kBeliefUpdate.
  std::vector<double> residuals;
};

/// Parses one stream line into *op. `expected_k` is the class count a
/// belief update must carry; pass 0 to accept any k. Returns false and
/// fills *error (without touching *op's validity guarantees) on a
/// malformed line: unknown command, wrong field count, a token that is
/// not entirely a number, a non-finite weight or residual, or a belief
/// class count that disagrees with `expected_k`. Comments ('#') and
/// blank lines are NOT accepted here — callers filter them, keeping one
/// line == one update.
bool ParseUpdateLine(const std::string& line, std::int64_t expected_k,
                     UpdateOp* op, std::string* error);

/// True for lines the stream reader skips (blank or starting with '#').
bool IsUpdateStreamComment(const std::string& line);

/// Reads a whole update-stream file. Errors are "path:line: message".
std::optional<std::vector<UpdateOp>> ReadUpdateStream(
    const std::string& path, std::int64_t expected_k, std::string* error);

/// Formats one update as its stream line (no trailing newline). Weights
/// and residuals round-trip exactly (printed at max precision).
std::string FormatUpdateOp(const UpdateOp& op);

/// Writes a stream file (one line per op, with a leading comment).
bool WriteUpdateStream(const std::vector<UpdateOp>& ops,
                       const std::string& path);

/// Applies one update to a warm LinBP state: returns the solver sweeps
/// used (>= 0), or -1 with *error filled on an invalid update — the
/// state is then untouched (or rolled back, for mid-solve backend
/// failures).
int ApplyUpdateOp(const UpdateOp& op, LinBpState* state, std::string* error);

/// Applies one update to a warm SBP state: returns the number of nodes
/// recomputed (>= 0), or -1 with *error filled on an invalid update with
/// the state untouched.
int ApplyUpdateOp(const UpdateOp& op, SbpState* state, std::string* error);

/// Applies a whole stream to a plain problem description (edge list +
/// explicit residual matrix), the cold-solve side of replay parity.
/// Returns false and fills *error on the first invalid op, leaving
/// *edges / *residuals in the partially updated state (cold-solve
/// callers treat any failure as fatal).
bool ApplyUpdateOpsToProblem(const std::vector<UpdateOp>& ops,
                             std::int64_t num_nodes,
                             std::vector<Edge>* edges,
                             DenseMatrix* residuals, std::string* error);

/// Knobs for GenerateUpdateTrace. Fractions are of `num_ops` and the
/// remainder (1 - add - remove - reweight) becomes belief updates.
struct UpdateTraceOptions {
  std::int64_t num_ops = 64;
  double add_fraction = 0.35;
  double remove_fraction = 0.2;
  double reweight_fraction = 0.25;
  /// Reweights draw new weights uniformly from this range.
  double min_weight = 0.5;
  double max_weight = 1.5;
  std::uint64_t seed = 1;
};

/// A generated trace: the graph to warm-start from (the scenario's graph
/// minus the held-out edges that the trace re-adds) plus the interleaved
/// update sequence. Every op is valid at its position in the replay, and
/// belief updates only touch nodes that are already explicit (with
/// centered, nonzero rows), so the explicit-node set is constant across
/// the trace — the invariant the SBP cold-parity check relies on.
struct UpdateTrace {
  std::vector<Edge> start_edges;
  std::vector<UpdateOp> ops;
};

/// Manufactures a mixed add/delete/reweight/belief trace from a
/// scenario. Add ops re-insert held-out scenario edges; delete and
/// reweight ops pick uniformly among edges present at that point; belief
/// ops perturb a random explicit node with a fresh centered residual
/// row. Kinds whose pool is empty (no explicit nodes, graph about to
/// run out of edges) fall back to reweights, then adds.
UpdateTrace GenerateUpdateTrace(const Scenario& scenario,
                                const UpdateTraceOptions& options);

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_UPDATE_STREAM_H_
