#include "src/dataset/format_internal.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#include "src/dataset/shard.h"  // kMaxShards: one cap for writer + readers
#include "src/util/check.h"

namespace linbp {
namespace dataset {
namespace internal {

std::uint64_t Fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

void AppendString(const std::string& s, std::vector<char>* out) {
  const std::uint32_t length = static_cast<std::uint32_t>(s.size());
  AppendPod(&length, 1, out);
  AppendPod(s.data(), s.size(), out);
}

bool ReadFileBytes(const std::string& path, std::vector<char>* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    *error = path + ": read failed";
    return false;
  }
  return true;
}

bool WriteFileDurably(const std::string& path, const char* header,
                      std::size_t header_bytes,
                      const std::vector<char>& payload, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = path + ": cannot write";
    return false;
  }
  out.write(header, static_cast<std::streamsize>(header_bytes));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  // ofstream buffers: a disk-full failure may only surface when the
  // buffer drains, so flush and re-check before declaring success.
  out.flush();
  if (!out) {
    *error = path + ": write failed";
    return false;
  }
  out.close();
  if (out.fail()) {
    *error = path + ": close failed";
    return false;
  }
  return true;
}

bool CheckMagicVersionEndianRange(const std::string& path, const char* data,
                                  std::size_t size, const char* magic,
                                  std::uint32_t min_version,
                                  std::uint32_t max_version, const char* what,
                                  std::uint32_t* version, std::string* error) {
  if (size < kHeaderBytes) {
    *error = path + ": truncated " + what + " (shorter than the header)";
    return false;
  }
  if (std::memcmp(data, magic, 8) != 0) {
    *error = path + ": not a LinBP " + what + " (bad magic)";
    return false;
  }
  std::uint32_t endian = 0;
  std::memcpy(&endian, data + 12, 4);
  if (endian == kEndianTagSwapped) {
    *error = path + ": big-endian " + what + " is not supported";
    return false;
  }
  if (endian != kEndianTag) {
    *error = path + ": corrupted header (bad endian tag)";
    return false;
  }
  std::memcpy(version, data + 8, 4);
  if (*version < min_version || *version > max_version) {
    const std::string expected =
        min_version == max_version
            ? std::to_string(min_version)
            : std::to_string(min_version) + ".." + std::to_string(max_version);
    *error = path + ": unsupported " + what + " version " +
             std::to_string(*version) + " (expected " + expected + ")";
    return false;
  }
  return true;
}

bool CheckMagicVersionEndian(const std::string& path, const char* data,
                             std::size_t size, const char* magic,
                             std::uint32_t expected_version, const char* what,
                             std::string* error) {
  std::uint32_t version = 0;
  return CheckMagicVersionEndianRange(path, data, size, magic,
                                      expected_version, expected_version,
                                      what, &version, error);
}

bool CheckCouplingResidual(const std::string& path,
                           const std::vector<double>& coupling,
                           std::int64_t k, std::string* error) {
  LINBP_CHECK(static_cast<std::int64_t>(coupling.size()) == k * k);
  for (std::int64_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double value = coupling[i * k + j];
      if (!std::isfinite(value) || value != coupling[j * k + i]) {
        *error = path + ": invalid coupling residual";
        return false;
      }
      row_sum += value;
    }
    if (std::abs(row_sum) > 1e-9) {
      *error = path + ": invalid coupling residual";
      return false;
    }
  }
  return true;
}

bool CheckHeaderCounts(const std::string& path, std::int64_t num_nodes,
                       std::int64_t k, std::int64_t nnz,
                       std::int64_t num_explicit, std::uint32_t flags,
                       std::uint32_t allowed_flags, const char* what,
                       std::string* error) {
  if (num_nodes < 0 ||
      num_nodes > std::numeric_limits<std::int32_t>::max() || k < 1 ||
      k > kMaxClasses || nnz < 0 || num_explicit < 0 ||
      num_explicit > num_nodes) {
    *error = path + ": corrupted " + what + " (counts out of range)";
    return false;
  }
  if ((flags & ~allowed_flags) != 0) {
    *error = path + ": corrupted " + what + " (unknown flags)";
    return false;
  }
  return true;
}

std::string ShardSiblingPath(const std::string& manifest_path,
                             const std::string& file) {
  const std::filesystem::path parent =
      std::filesystem::path(manifest_path).parent_path();
  return (parent / file).string();
}

std::int64_t ShardPayloadBytes(std::int64_t rows, std::int64_t nnz,
                               std::int64_t num_explicit, std::int64_t k,
                               bool has_ground_truth) {
  return (rows + 1) * 8 +            // local row_ptr
         nnz * (4 + 8) +             // col_idx + values
         num_explicit * 8 * (1 + k)  // explicit ids + residual rows
         + (has_ground_truth ? rows * 4 : 0);
}

std::int64_t ShardDecodedPayloadBytes(std::int64_t rows, std::int64_t nnz,
                                      std::int64_t num_explicit,
                                      std::int64_t k, bool has_ground_truth,
                                      bool values_f32) {
  return (rows + 1) * 8 + nnz * (4 + (values_f32 ? 4 : 8)) +
         num_explicit * 8 * (1 + k) + (has_ground_truth ? rows * 4 : 0);
}

std::int64_t ShardPayloadBytesV2Min(std::int64_t rows, std::int64_t nnz,
                                    std::int64_t num_explicit, std::int64_t k,
                                    bool has_ground_truth, bool values_f32) {
  return 8 +                // u64 column-section byte count
         rows + nnz +       // >= 1 varint byte per row count and column id
         nnz * (values_f32 ? 4 : 8) + num_explicit * 8 * (1 + k) +
         (has_ground_truth ? rows * 4 : 0);
}

void AppendVarint(std::uint64_t value, std::vector<char>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void EncodeColumnSection(const std::int64_t* local_row_ptr, std::int64_t rows,
                         const std::int32_t* col_idx,
                         std::vector<char>* out) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t begin = local_row_ptr[r];
    const std::int64_t end = local_row_ptr[r + 1];
    AppendVarint(static_cast<std::uint64_t>(end - begin), out);
    std::int64_t prev = 0;
    for (std::int64_t e = begin; e < end; ++e) {
      const std::int64_t col = col_idx[e];
      // First id raw, then strictly positive deltas (columns are sorted
      // and duplicate-free per row, so col > prev always holds here).
      AppendVarint(static_cast<std::uint64_t>(e == begin ? col : col - prev),
                   out);
      prev = col;
    }
  }
}

namespace {

// One bounds-checked LEB128 read. A valid value fits int32, so anything
// longer than 5 bytes is corrupt regardless of its numeric value.
bool ReadVarint(const char** data, const char* end, std::uint64_t* value,
                std::string* what) {
  *value = 0;
  for (int shift = 0; shift < 5 * 7; shift += 7) {
    if (*data == end) {
      *what = "truncated varint";
      return false;
    }
    const std::uint8_t byte = static_cast<std::uint8_t>(*(*data)++);
    *value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  *what = "varint overflow (more than 5 bytes)";
  return false;
}

}  // namespace

bool DecodeColumnSection(const char* data, std::size_t size,
                         std::int64_t rows, std::int64_t expected_nnz,
                         std::int64_t num_nodes, std::int64_t* local_row_ptr,
                         std::int32_t* col_idx, std::string* what) {
  const char* end = data + size;
  std::int64_t written = 0;
  local_row_ptr[0] = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint64_t row_nnz = 0;
    if (!ReadVarint(&data, end, &row_nnz, what)) return false;
    if (row_nnz > static_cast<std::uint64_t>(expected_nnz - written)) {
      *what = "row entry counts exceed the header nnz";
      return false;
    }
    std::int64_t col = 0;
    for (std::uint64_t e = 0; e < row_nnz; ++e) {
      std::uint64_t delta = 0;
      if (!ReadVarint(&data, end, &delta, what)) return false;
      if (e > 0 && delta == 0) {
        *what = "non-monotone delta (columns not strictly increasing)";
        return false;
      }
      col = e == 0 ? static_cast<std::int64_t>(delta)
                   : col + static_cast<std::int64_t>(delta);
      if (col >= num_nodes) {
        *what = "column id out of range";
        return false;
      }
      col_idx[written++] = static_cast<std::int32_t>(col);
    }
    local_row_ptr[r + 1] = written;
  }
  if (written != expected_nnz) {
    *what = "row entry counts do not sum to the header nnz";
    return false;
  }
  if (data != end) {
    *what = "trailing bytes in the column section";
    return false;
  }
  return true;
}

bool ParseShardManifest(const std::string& path,
                        const std::vector<char>& bytes,
                        std::uint32_t max_version, ShardManifest* m,
                        std::string* error) {
  if (!CheckMagicVersionEndianRange(path, bytes.data(), bytes.size(),
                                    kShardManifestMagic, 1, max_version,
                                    "shard manifest", &m->version, error)) {
    return false;
  }
  const char* data = bytes.data();
  std::uint32_t flags = 0;
  std::uint32_t num_shards = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&m->num_nodes, data + 16, 8);
  std::memcpy(&m->k, data + 24, 8);
  std::memcpy(&m->nnz, data + 32, 8);
  std::memcpy(&m->num_explicit, data + 40, 8);
  std::memcpy(&flags, data + 48, 4);
  std::memcpy(&num_shards, data + 52, 4);
  std::memcpy(&checksum, data + 56, 8);
  const std::uint32_t allowed_flags =
      m->version >= 2 ? kFlagGroundTruth | kFlagF32Values : kFlagGroundTruth;
  if (!CheckHeaderCounts(path, m->num_nodes, m->k, m->nnz, m->num_explicit,
                         flags, allowed_flags, "manifest header", error)) {
    return false;
  }
  m->has_ground_truth = (flags & kFlagGroundTruth) != 0;
  m->values_f32 = (flags & kFlagF32Values) != 0;
  if (num_shards < 1 ||
      static_cast<std::int64_t>(num_shards) > kMaxShards ||
      static_cast<std::int64_t>(num_shards) > m->num_nodes) {
    *error = path + ": corrupted manifest header (shard count out of range)";
    return false;
  }
  const char* payload = data + kHeaderBytes;
  const std::size_t payload_size = bytes.size() - kHeaderBytes;
  if (Fnv1a(payload, payload_size) != checksum) {
    *error = path + ": checksum mismatch (corrupted manifest)";
    return false;
  }

  Cursor cursor(payload, payload_size);
  m->coupling.resize(static_cast<std::size_t>(m->k * m->k));
  if (!cursor.ReadString(&m->name) || !cursor.ReadString(&m->spec) ||
      !cursor.Read(m->coupling.data(), m->coupling.size())) {
    *error = path + ": truncated manifest payload";
    return false;
  }
  m->entries.resize(num_shards);
  std::int64_t nnz_sum = 0;
  std::int64_t explicit_sum = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardManifestEntry& entry = m->entries[s];
    if (!cursor.Read(&entry.row_begin, 1) || !cursor.Read(&entry.row_end, 1) ||
        !cursor.Read(&entry.nnz, 1) || !cursor.Read(&entry.num_explicit, 1) ||
        (m->version >= 2 && !cursor.Read(&entry.payload_bytes, 1)) ||
        !cursor.Read(&entry.checksum, 1) || !cursor.ReadString(&entry.file)) {
      *error = path + ": truncated manifest payload";
      return false;
    }
    // The shard table must tile [0, num_nodes) exactly: shard 0 starts at
    // row 0, every shard is non-empty and abuts its predecessor (no gap,
    // no overlap), and the last one ends at num_nodes (checked below).
    const std::int64_t expected_begin =
        s == 0 ? 0 : m->entries[s - 1].row_end;
    if (entry.row_begin != expected_begin) {
      *error = path + ": shard " + std::to_string(s) +
               " row range does not abut its predecessor (gap or overlap)";
      return false;
    }
    if (entry.row_end <= entry.row_begin ||
        entry.row_end > m->num_nodes) {
      *error = path + ": shard " + std::to_string(s) +
               " row range is empty or out of bounds";
      return false;
    }
    // The 2^48 cap keeps every byte-size computation below comfortably
    // inside int64 (a real shard this large would be ~3 petabytes).
    if (entry.nnz < 0 || entry.nnz > (std::int64_t{1} << 48) ||
        entry.num_explicit < 0 ||
        entry.num_explicit > entry.row_end - entry.row_begin) {
      *error = path + ": shard " + std::to_string(s) +
               " counts out of range";
      return false;
    }
    if (entry.file.empty()) {
      *error = path + ": shard " + std::to_string(s) + " has no file name";
      return false;
    }
    const std::int64_t rows = entry.row_end - entry.row_begin;
    if (m->version >= 2) {
      // The encoded size is a declared field, so bound it both ways: at
      // least one varint byte per row count and column id (the floor the
      // preflight trusts against hostile decoded counts) and at most the
      // 5-byte varint ceiling.
      const std::int64_t floor = ShardPayloadBytesV2Min(
          rows, entry.nnz, entry.num_explicit, m->k, m->has_ground_truth,
          m->values_f32);
      const std::int64_t ceiling = floor + 4 * (rows + entry.nnz);
      if (entry.payload_bytes < floor || entry.payload_bytes > ceiling) {
        *error = path + ": shard " + std::to_string(s) +
                 " payload size is inconsistent with its counts";
        return false;
      }
    } else {
      entry.payload_bytes = ShardPayloadBytes(
          rows, entry.nnz, entry.num_explicit, m->k, m->has_ground_truth);
    }
    // Incremental bound before accumulating: per-entry values are only
    // capped at 2^48, so a crafted 2^20-entry table could wrap a naive
    // int64 sum. Both sides here are non-negative and bounded by the
    // manifest totals, so the comparison itself cannot overflow.
    if (entry.nnz > m->nnz - nnz_sum ||
        entry.num_explicit > m->num_explicit - explicit_sum) {
      *error = path + ": shard counts exceed the manifest totals";
      return false;
    }
    nnz_sum += entry.nnz;
    explicit_sum += entry.num_explicit;
  }
  if (cursor.remaining() != 0) {
    *error = path + ": trailing bytes after the manifest payload";
    return false;
  }
  if (m->entries.back().row_end != m->num_nodes) {
    *error = path + ": shard row ranges do not cover every row";
    return false;
  }
  if (nnz_sum != m->nnz) {
    *error = path + ": shard nnz counts do not sum to the manifest total";
    return false;
  }
  if (explicit_sum != m->num_explicit) {
    *error = path +
             ": shard explicit counts do not sum to the manifest total";
    return false;
  }
  m->file_bytes = static_cast<std::int64_t>(bytes.size());
  return true;
}

bool CheckShardAgainstManifest(const std::string& path,
                               const std::vector<char>& bytes,
                               const ShardManifest& manifest,
                               std::int64_t shard, ShardFileHeader* h,
                               std::string* error) {
  const ShardManifestEntry& entry = manifest.entries[shard];
  if (!CheckMagicVersionEndian(path, bytes.data(), bytes.size(),
                               kShardFileMagic, manifest.version,
                               "snapshot shard", error)) {
    return false;
  }
  std::memcpy(&h->row_begin, bytes.data() + 16, 8);
  std::memcpy(&h->row_end, bytes.data() + 24, 8);
  std::memcpy(&h->nnz, bytes.data() + 32, 8);
  std::memcpy(&h->num_explicit, bytes.data() + 40, 8);
  std::memcpy(&h->flags, bytes.data() + 48, 4);
  std::memcpy(&h->shard_index, bytes.data() + 52, 4);
  std::memcpy(&h->checksum, bytes.data() + 56, 8);
  const std::uint32_t expected_flags =
      (manifest.has_ground_truth ? kFlagGroundTruth : 0) |
      (manifest.values_f32 ? kFlagF32Values : 0);
  if (h->row_begin != entry.row_begin || h->row_end != entry.row_end ||
      h->nnz != entry.nnz || h->num_explicit != entry.num_explicit ||
      h->flags != expected_flags ||
      h->shard_index != static_cast<std::uint32_t>(shard)) {
    *error = path + ": shard header disagrees with its manifest entry";
    return false;
  }
  const char* payload = bytes.data() + kHeaderBytes;
  const std::size_t payload_size = bytes.size() - kHeaderBytes;
  if (h->checksum != entry.checksum ||
      Fnv1a(payload, payload_size) != h->checksum) {
    *error = path + ": checksum mismatch (corrupted shard)";
    return false;
  }
  return true;
}

std::optional<Scenario> ValidateAndAssembleScenario(
    const std::string& path, ScenarioParts parts,
    const exec::ExecContext& ctx, std::string* error) {
  LINBP_CHECK(error != nullptr);
  const std::int64_t n = parts.num_nodes;
  const std::int64_t k = parts.k;
  const std::int64_t nnz = static_cast<std::int64_t>(parts.col_idx.size());
  LINBP_CHECK(n >= 0 && k >= 1 && k <= kMaxClasses);
  LINBP_CHECK(static_cast<std::int64_t>(parts.row_ptr.size()) == n + 1);
  LINBP_CHECK(parts.values.size() == parts.col_idx.size());
  LINBP_CHECK(parts.coupling.size() == static_cast<std::size_t>(k * k));
  LINBP_CHECK(parts.explicit_rows.size() ==
              parts.explicit_nodes.size() * static_cast<std::size_t>(k));
  LINBP_CHECK(!parts.has_ground_truth ||
              static_cast<std::int64_t>(parts.ground_truth.size()) == n);

  const std::vector<std::int64_t>& row_ptr = parts.row_ptr;
  const std::vector<std::int32_t>& col_idx = parts.col_idx;
  const std::vector<double>& values = parts.values;

  // Monotonicity of the WHOLE row_ptr array must hold before any entry
  // loop below runs — together with back() == nnz it bounds every
  // [row_ptr[r], row_ptr[r+1]) range, including the mirror lookups into
  // other rows.
  std::atomic<bool> valid(true);
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    valid.store(false);
  } else {
    ctx.ParallelFor(0, n, /*min_grain=*/8192,
                    [&](std::int64_t row_begin, std::int64_t row_end) {
                      for (std::int64_t r = row_begin; r < row_end; ++r) {
                        if (row_ptr[r] > row_ptr[r + 1]) {
                          valid.store(false, std::memory_order_relaxed);
                          return;
                        }
                      }
                    });
  }
  if (!valid.load()) {
    *error = path + ": invalid CSR row pointers";
    return std::nullopt;
  }
  // Per-row entry sweep: CSR ordering, range, symmetry, finite weights.
  // Symmetry is checked globally — a mirror entry may live in a different
  // shard's row slice, so this sweep is also the cross-shard consistency
  // check of the sharded format.
  ctx.ParallelFor(0, n, /*min_grain=*/2048, [&](std::int64_t row_begin,
                                                std::int64_t row_end) {
    bool ok = true;
    for (std::int64_t r = row_begin; r < row_end && ok; ++r) {
      for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
        const std::int64_t c = col_idx[e];
        if (c < 0 || c >= n || c == r || !std::isfinite(values[e]) ||
            (e > row_ptr[r] && col_idx[e - 1] >= c)) {
          ok = false;
          break;
        }
        // Mirror entry (c, r) must exist with an identical value.
        const auto begin = col_idx.begin() + row_ptr[c];
        const auto end = col_idx.begin() + row_ptr[c + 1];
        const auto it =
            std::lower_bound(begin, end, static_cast<std::int32_t>(r));
        if (it == end || *it != r ||
            values[it - col_idx.begin()] != values[e]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) valid.store(false, std::memory_order_relaxed);
  });
  if (!valid.load()) {
    *error = path + ": invalid adjacency payload (CSR structure, symmetry, "
                    "or non-finite weights)";
    return std::nullopt;
  }

  if (!CheckCouplingResidual(path, parts.coupling, k, error)) {
    return std::nullopt;
  }
  Scenario scenario;
  scenario.name = std::move(parts.name);
  scenario.spec = std::move(parts.spec);
  scenario.k = k;
  scenario.coupling_residual = DenseMatrix(k, k);
  std::copy(parts.coupling.begin(), parts.coupling.end(),
            scenario.coupling_residual.mutable_data().begin());

  scenario.explicit_nodes = std::move(parts.explicit_nodes);
  scenario.explicit_residuals = DenseMatrix(n, k);
  for (std::size_t i = 0; i < scenario.explicit_nodes.size(); ++i) {
    const std::int64_t v = scenario.explicit_nodes[i];
    if (v < 0 || v >= n ||
        (i > 0 && scenario.explicit_nodes[i - 1] >= v)) {
      *error = path + ": invalid explicit node list";
      return std::nullopt;
    }
    for (std::int64_t c = 0; c < k; ++c) {
      const double b = parts.explicit_rows[i * k + c];
      if (!std::isfinite(b)) {
        *error = path + ": non-finite explicit belief";
        return std::nullopt;
      }
      scenario.explicit_residuals.At(v, c) = b;
    }
  }

  if (parts.has_ground_truth) {
    scenario.ground_truth.resize(n);
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int32_t cls = parts.ground_truth[v];
      if (cls < -1 || cls >= k) {
        *error = path + ": ground-truth class out of range";
        return std::nullopt;
      }
      scenario.ground_truth[v] = cls;
    }
  }

  // The payload passed full validation above, so the trusted adopt paths
  // apply — re-running the CHECKed sweeps would just double the cost of
  // the format's reason to exist. Edge-list and degree reconstruction
  // still fan out on ctx.
  scenario.graph = Graph::FromValidatedAdjacency(
      SparseMatrix::FromValidatedCsr(n, n, std::move(parts.row_ptr),
                                     std::move(parts.col_idx),
                                     std::move(parts.values)),
      ctx);
  return scenario;
}

}  // namespace internal
}  // namespace dataset
}  // namespace linbp
