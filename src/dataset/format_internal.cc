#include "src/dataset/format_internal.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>
#include <utility>

#include "src/util/check.h"

namespace linbp {
namespace dataset {
namespace internal {

std::uint64_t Fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

void AppendString(const std::string& s, std::vector<char>* out) {
  const std::uint32_t length = static_cast<std::uint32_t>(s.size());
  AppendPod(&length, 1, out);
  AppendPod(s.data(), s.size(), out);
}

bool ReadFileBytes(const std::string& path, std::vector<char>* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    *error = path + ": read failed";
    return false;
  }
  return true;
}

bool WriteFileDurably(const std::string& path, const char* header,
                      std::size_t header_bytes,
                      const std::vector<char>& payload, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = path + ": cannot write";
    return false;
  }
  out.write(header, static_cast<std::streamsize>(header_bytes));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  // ofstream buffers: a disk-full failure may only surface when the
  // buffer drains, so flush and re-check before declaring success.
  out.flush();
  if (!out) {
    *error = path + ": write failed";
    return false;
  }
  out.close();
  if (out.fail()) {
    *error = path + ": close failed";
    return false;
  }
  return true;
}

bool CheckMagicVersionEndian(const std::string& path, const char* data,
                             std::size_t size, const char* magic,
                             std::uint32_t expected_version, const char* what,
                             std::string* error) {
  if (size < kHeaderBytes) {
    *error = path + ": truncated " + what + " (shorter than the header)";
    return false;
  }
  if (std::memcmp(data, magic, 8) != 0) {
    *error = path + ": not a LinBP " + what + " (bad magic)";
    return false;
  }
  std::uint32_t endian = 0;
  std::memcpy(&endian, data + 12, 4);
  if (endian == kEndianTagSwapped) {
    *error = path + ": big-endian " + what + " is not supported";
    return false;
  }
  if (endian != kEndianTag) {
    *error = path + ": corrupted header (bad endian tag)";
    return false;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, data + 8, 4);
  if (version != expected_version) {
    *error = path + ": unsupported " + what + " version " +
             std::to_string(version) + " (expected " +
             std::to_string(expected_version) + ")";
    return false;
  }
  return true;
}

bool CheckHeaderCounts(const std::string& path, std::int64_t num_nodes,
                       std::int64_t k, std::int64_t nnz,
                       std::int64_t num_explicit, std::uint32_t flags,
                       const char* what, std::string* error) {
  if (num_nodes < 0 ||
      num_nodes > std::numeric_limits<std::int32_t>::max() || k < 1 ||
      k > kMaxClasses || nnz < 0 || num_explicit < 0 ||
      num_explicit > num_nodes) {
    *error = path + ": corrupted " + what + " (counts out of range)";
    return false;
  }
  if ((flags & ~kFlagGroundTruth) != 0) {
    *error = path + ": corrupted " + what + " (unknown flags)";
    return false;
  }
  return true;
}

std::optional<Scenario> ValidateAndAssembleScenario(
    const std::string& path, ScenarioParts parts,
    const exec::ExecContext& ctx, std::string* error) {
  LINBP_CHECK(error != nullptr);
  const std::int64_t n = parts.num_nodes;
  const std::int64_t k = parts.k;
  const std::int64_t nnz = static_cast<std::int64_t>(parts.col_idx.size());
  LINBP_CHECK(n >= 0 && k >= 1 && k <= kMaxClasses);
  LINBP_CHECK(static_cast<std::int64_t>(parts.row_ptr.size()) == n + 1);
  LINBP_CHECK(parts.values.size() == parts.col_idx.size());
  LINBP_CHECK(parts.coupling.size() == static_cast<std::size_t>(k * k));
  LINBP_CHECK(parts.explicit_rows.size() ==
              parts.explicit_nodes.size() * static_cast<std::size_t>(k));
  LINBP_CHECK(!parts.has_ground_truth ||
              static_cast<std::int64_t>(parts.ground_truth.size()) == n);

  const std::vector<std::int64_t>& row_ptr = parts.row_ptr;
  const std::vector<std::int32_t>& col_idx = parts.col_idx;
  const std::vector<double>& values = parts.values;

  // Monotonicity of the WHOLE row_ptr array must hold before any entry
  // loop below runs — together with back() == nnz it bounds every
  // [row_ptr[r], row_ptr[r+1]) range, including the mirror lookups into
  // other rows.
  std::atomic<bool> valid(true);
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    valid.store(false);
  } else {
    ctx.ParallelFor(0, n, /*min_grain=*/8192,
                    [&](std::int64_t row_begin, std::int64_t row_end) {
                      for (std::int64_t r = row_begin; r < row_end; ++r) {
                        if (row_ptr[r] > row_ptr[r + 1]) {
                          valid.store(false, std::memory_order_relaxed);
                          return;
                        }
                      }
                    });
  }
  if (!valid.load()) {
    *error = path + ": invalid CSR row pointers";
    return std::nullopt;
  }
  // Per-row entry sweep: CSR ordering, range, symmetry, finite weights.
  // Symmetry is checked globally — a mirror entry may live in a different
  // shard's row slice, so this sweep is also the cross-shard consistency
  // check of the sharded format.
  ctx.ParallelFor(0, n, /*min_grain=*/2048, [&](std::int64_t row_begin,
                                                std::int64_t row_end) {
    bool ok = true;
    for (std::int64_t r = row_begin; r < row_end && ok; ++r) {
      for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
        const std::int64_t c = col_idx[e];
        if (c < 0 || c >= n || c == r || !std::isfinite(values[e]) ||
            (e > row_ptr[r] && col_idx[e - 1] >= c)) {
          ok = false;
          break;
        }
        // Mirror entry (c, r) must exist with an identical value.
        const auto begin = col_idx.begin() + row_ptr[c];
        const auto end = col_idx.begin() + row_ptr[c + 1];
        const auto it =
            std::lower_bound(begin, end, static_cast<std::int32_t>(r));
        if (it == end || *it != r ||
            values[it - col_idx.begin()] != values[e]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) valid.store(false, std::memory_order_relaxed);
  });
  if (!valid.load()) {
    *error = path + ": invalid adjacency payload (CSR structure, symmetry, "
                    "or non-finite weights)";
    return std::nullopt;
  }

  Scenario scenario;
  scenario.name = std::move(parts.name);
  scenario.spec = std::move(parts.spec);
  scenario.k = k;
  scenario.coupling_residual = DenseMatrix(k, k);
  std::copy(parts.coupling.begin(), parts.coupling.end(),
            scenario.coupling_residual.mutable_data().begin());
  for (std::int64_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double value = scenario.coupling_residual.At(i, j);
      if (!std::isfinite(value) ||
          value != scenario.coupling_residual.At(j, i)) {
        *error = path + ": invalid coupling residual";
        return std::nullopt;
      }
      row_sum += value;
    }
    if (std::abs(row_sum) > 1e-9) {
      *error = path + ": invalid coupling residual";
      return std::nullopt;
    }
  }

  scenario.explicit_nodes = std::move(parts.explicit_nodes);
  scenario.explicit_residuals = DenseMatrix(n, k);
  for (std::size_t i = 0; i < scenario.explicit_nodes.size(); ++i) {
    const std::int64_t v = scenario.explicit_nodes[i];
    if (v < 0 || v >= n ||
        (i > 0 && scenario.explicit_nodes[i - 1] >= v)) {
      *error = path + ": invalid explicit node list";
      return std::nullopt;
    }
    for (std::int64_t c = 0; c < k; ++c) {
      const double b = parts.explicit_rows[i * k + c];
      if (!std::isfinite(b)) {
        *error = path + ": non-finite explicit belief";
        return std::nullopt;
      }
      scenario.explicit_residuals.At(v, c) = b;
    }
  }

  if (parts.has_ground_truth) {
    scenario.ground_truth.resize(n);
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int32_t cls = parts.ground_truth[v];
      if (cls < -1 || cls >= k) {
        *error = path + ": ground-truth class out of range";
        return std::nullopt;
      }
      scenario.ground_truth[v] = cls;
    }
  }

  // The payload passed full validation above, so the trusted adopt paths
  // apply — re-running the CHECKed sweeps would just double the cost of
  // the format's reason to exist. Edge-list and degree reconstruction
  // still fan out on ctx.
  scenario.graph = Graph::FromValidatedAdjacency(
      SparseMatrix::FromValidatedCsr(n, n, std::move(parts.row_ptr),
                                     std::move(parts.col_idx),
                                     std::move(parts.values)),
      ctx);
  return scenario;
}

}  // namespace internal
}  // namespace dataset
}  // namespace linbp
