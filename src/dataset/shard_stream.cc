#include "src/dataset/shard_stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/dataset/format_internal.h"
#include "src/dataset/shard.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {
namespace dataset {

void ShardStreamBlock::ReleaseAccounting() {
  if (accounting_ != nullptr && counted_bytes_ > 0) {
    accounting_->Release(counted_bytes_);
  }
  accounting_ = nullptr;
  counted_bytes_ = 0;
}

ShardStreamBlock::~ShardStreamBlock() { ReleaseAccounting(); }

ShardStreamBlock::ShardStreamBlock(ShardStreamBlock&& other) noexcept
    : shard(other.shard),
      row_begin(other.row_begin),
      row_end(other.row_end),
      row_ptr(std::move(other.row_ptr)),
      col_idx(std::move(other.col_idx)),
      values(std::move(other.values)),
      explicit_nodes(std::move(other.explicit_nodes)),
      explicit_rows(std::move(other.explicit_rows)),
      ground_truth(std::move(other.ground_truth)),
      accounting_(std::move(other.accounting_)),
      counted_bytes_(other.counted_bytes_) {
  other.accounting_ = nullptr;
  other.counted_bytes_ = 0;
}

ShardStreamBlock& ShardStreamBlock::operator=(
    ShardStreamBlock&& other) noexcept {
  if (this == &other) return *this;
  ReleaseAccounting();
  shard = other.shard;
  row_begin = other.row_begin;
  row_end = other.row_end;
  row_ptr = std::move(other.row_ptr);
  col_idx = std::move(other.col_idx);
  values = std::move(other.values);
  explicit_nodes = std::move(other.explicit_nodes);
  explicit_rows = std::move(other.explicit_rows);
  ground_truth = std::move(other.ground_truth);
  accounting_ = std::move(other.accounting_);
  counted_bytes_ = other.counted_bytes_;
  other.accounting_ = nullptr;
  other.counted_bytes_ = 0;
  return *this;
}

ShardStreamReader::ShardStreamReader()
    : accounting_(std::make_shared<internal::ShardByteAccounting>()) {}

std::optional<ShardStreamReader> ShardStreamReader::Open(
    const std::string& manifest_path, std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(manifest_path, &bytes, error)) {
    return std::nullopt;
  }
  auto manifest = std::make_shared<internal::ShardManifest>();
  if (!internal::ParseShardManifest(manifest_path, bytes,
                                    kShardFormatVersion, manifest.get(),
                                    error)) {
    return std::nullopt;
  }
  // Same coupling gate the bulk loader applies, so a manifest the
  // streaming path accepts is exactly one LoadShardedSnapshot accepts.
  if (!internal::CheckCouplingResidual(manifest_path, manifest->coupling,
                                       manifest->k, error)) {
    return std::nullopt;
  }
  ShardStreamReader reader;
  reader.manifest_path_ = manifest_path;
  reader.manifest_ = std::move(manifest);
  return reader;
}

std::int64_t ShardStreamReader::num_shards() const {
  return static_cast<std::int64_t>(manifest_->entries.size());
}
std::int64_t ShardStreamReader::num_nodes() const {
  return manifest_->num_nodes;
}
std::int64_t ShardStreamReader::k() const { return manifest_->k; }
std::int64_t ShardStreamReader::nnz() const { return manifest_->nnz; }
std::int64_t ShardStreamReader::num_explicit() const {
  return manifest_->num_explicit;
}
bool ShardStreamReader::has_ground_truth() const {
  return manifest_->has_ground_truth;
}
const std::string& ShardStreamReader::name() const {
  return manifest_->name;
}
const std::string& ShardStreamReader::spec() const {
  return manifest_->spec;
}
const std::vector<double>& ShardStreamReader::coupling() const {
  return manifest_->coupling;
}

std::int64_t ShardStreamReader::row_begin(std::int64_t shard) const {
  return manifest_->entries[shard].row_begin;
}
std::int64_t ShardStreamReader::row_end(std::int64_t shard) const {
  return manifest_->entries[shard].row_end;
}

std::int64_t ShardStreamReader::block_csr_bytes(std::int64_t shard) const {
  const internal::ShardManifestEntry& entry = manifest_->entries[shard];
  const std::int64_t rows = entry.row_end - entry.row_begin;
  return (rows + 1) * 8 + entry.nnz * (4 + 8);
}

std::int64_t ShardStreamReader::max_block_csr_bytes() const {
  std::int64_t max_bytes = 0;
  for (std::int64_t s = 0; s < num_shards(); ++s) {
    max_bytes = std::max(max_bytes, block_csr_bytes(s));
  }
  return max_bytes;
}

std::int64_t ShardStreamReader::resident_csr_bytes() const {
  return accounting_->resident.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::peak_resident_csr_bytes() const {
  return accounting_->peak.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::blocks_read_total() const {
  return accounting_->blocks_read.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::file_bytes_read_total() const {
  return accounting_->file_bytes_read.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::csr_bytes_read_total() const {
  return accounting_->csr_bytes_read.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::checksum_retries_total() const {
  return accounting_->checksum_retries.load(std::memory_order_relaxed);
}

bool ShardStreamReader::ReadBlock(std::int64_t shard,
                                  ShardStreamBlock* block,
                                  std::string* error) const {
  LINBP_CHECK(block != nullptr && error != nullptr);
  LINBP_CHECK(shard >= 0 && shard < num_shards());
  *block = ShardStreamBlock();
  const internal::ShardManifest& manifest = *manifest_;
  const internal::ShardManifestEntry& entry = manifest.entries[shard];
  const std::string path =
      internal::ShardSiblingPath(manifest_path_, entry.file);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(path, &bytes, error)) return false;
  internal::ShardFileHeader h;
  if (!internal::CheckShardAgainstManifest(path, bytes, manifest, shard,
                                           kShardFormatVersion, &h, error)) {
    // One re-read before giving up: a mismatch can be a transient
    // partial read (e.g. a writer still flushing); persistent on-disk
    // corruption fails identically on the second pass.
    accounting_->checksum_retries.fetch_add(1, std::memory_order_relaxed);
    LINBP_OBS_COUNTER_ADD("shard_stream_checksum_retries_total", 1);
    if (!internal::ReadFileBytes(path, &bytes, error)) return false;
    if (!internal::CheckShardAgainstManifest(path, bytes, manifest, shard,
                                             kShardFormatVersion, &h,
                                             error)) {
      return false;
    }
  }

  const std::int64_t rows = h.row_end - h.row_begin;
  const std::int64_t k = manifest.k;
  internal::Cursor cursor(bytes.data() + internal::kHeaderBytes,
                          bytes.size() - internal::kHeaderBytes);
  const bool sections_ok =
      cursor.ReadVector(&block->row_ptr,
                        static_cast<std::size_t>(rows + 1)) &&
      cursor.ReadVector(&block->col_idx, static_cast<std::size_t>(h.nnz)) &&
      cursor.ReadVector(&block->values, static_cast<std::size_t>(h.nnz)) &&
      cursor.ReadVector(&block->explicit_nodes,
                        static_cast<std::size_t>(h.num_explicit)) &&
      cursor.ReadVector(&block->explicit_rows,
                        static_cast<std::size_t>(h.num_explicit * k)) &&
      (!manifest.has_ground_truth ||
       cursor.ReadVector(&block->ground_truth,
                         static_cast<std::size_t>(rows)));
  if (!sections_ok || cursor.remaining() != 0) {
    *error = path + (sections_ok ? ": trailing bytes after the shard payload"
                                 : ": truncated shard payload");
    *block = ShardStreamBlock();
    return false;
  }
  block->shard = shard;
  block->row_begin = h.row_begin;
  block->row_end = h.row_end;
  // The block's CSR memory is live from here on: count it before the
  // structural sweep so the residency instrumentation never under-reports.
  block->accounting_ = accounting_;
  block->counted_bytes_ = block_csr_bytes(shard);
  accounting_->Add(block->counted_bytes_);

  // Structural validation — everything the SpMM/SpMV kernels rely on
  // (the checksum above only proves the bytes match what was written).
  auto fail = [&](const std::string& what) {
    *error = path + ": " + what;
    *block = ShardStreamBlock();
    return false;
  };
  if (block->row_ptr.front() != 0 || block->row_ptr.back() != h.nnz) {
    return fail("invalid shard row pointers");
  }
  const std::int64_t n = manifest.num_nodes;
  for (std::int64_t r = 0; r < rows; ++r) {
    if (block->row_ptr[r] > block->row_ptr[r + 1]) {
      return fail("invalid shard row pointers");
    }
    for (std::int64_t e = block->row_ptr[r]; e < block->row_ptr[r + 1];
         ++e) {
      const std::int64_t c = block->col_idx[e];
      if (c < 0 || c >= n || c == h.row_begin + r ||
          !std::isfinite(block->values[e]) ||
          (e > block->row_ptr[r] && block->col_idx[e - 1] >= c)) {
        return fail(
            "invalid shard payload (CSR structure, self-loop, or "
            "non-finite weights)");
      }
    }
  }
  for (std::int64_t i = 0; i < h.num_explicit; ++i) {
    const std::int64_t v = block->explicit_nodes[i];
    if (v < h.row_begin || v >= h.row_end ||
        (i > 0 && block->explicit_nodes[i - 1] >= v)) {
      return fail("invalid explicit node list");
    }
    for (std::int64_t c = 0; c < k; ++c) {
      if (!std::isfinite(block->explicit_rows[i * k + c])) {
        return fail("non-finite explicit belief");
      }
    }
  }
  for (const std::int32_t cls : block->ground_truth) {
    if (cls < -1 || cls >= k) {
      return fail("ground-truth class out of range");
    }
  }
  // Count the completed read (cumulative totals are success-only, so
  // they sum consistently with the blocks actually handed out).
  const std::int64_t file_bytes = static_cast<std::int64_t>(bytes.size());
  accounting_->blocks_read.fetch_add(1, std::memory_order_relaxed);
  accounting_->file_bytes_read.fetch_add(file_bytes,
                                         std::memory_order_relaxed);
  accounting_->csr_bytes_read.fetch_add(block->counted_bytes_,
                                        std::memory_order_relaxed);
  LINBP_OBS_COUNTER_ADD("shard_stream_blocks_read_total", 1);
  LINBP_OBS_COUNTER_ADD("shard_stream_bytes_read_total", file_bytes);
  LINBP_OBS_COUNTER_ADD("shard_stream_csr_bytes_total",
                        block->counted_bytes_);
  return true;
}

}  // namespace dataset
}  // namespace linbp
