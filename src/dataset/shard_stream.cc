#include "src/dataset/shard_stream.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/dataset/format_internal.h"
#include "src/dataset/shard.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {
namespace dataset {

void ShardStreamBlock::ReleaseAccounting() {
  if (accounting_ != nullptr && counted_bytes_ > 0) {
    accounting_->Release(counted_bytes_);
  }
  accounting_ = nullptr;
  counted_bytes_ = 0;
}

ShardStreamBlock::~ShardStreamBlock() { ReleaseAccounting(); }

ShardStreamBlock::ShardStreamBlock(ShardStreamBlock&& other) noexcept
    : shard(other.shard),
      row_begin(other.row_begin),
      row_end(other.row_end),
      row_ptr(std::move(other.row_ptr)),
      col_idx(std::move(other.col_idx)),
      values(std::move(other.values)),
      values_f32(std::move(other.values_f32)),
      explicit_nodes(std::move(other.explicit_nodes)),
      explicit_rows(std::move(other.explicit_rows)),
      ground_truth(std::move(other.ground_truth)),
      accounting_(std::move(other.accounting_)),
      counted_bytes_(other.counted_bytes_) {
  other.accounting_ = nullptr;
  other.counted_bytes_ = 0;
}

ShardStreamBlock& ShardStreamBlock::operator=(
    ShardStreamBlock&& other) noexcept {
  if (this == &other) return *this;
  ReleaseAccounting();
  shard = other.shard;
  row_begin = other.row_begin;
  row_end = other.row_end;
  row_ptr = std::move(other.row_ptr);
  col_idx = std::move(other.col_idx);
  values = std::move(other.values);
  values_f32 = std::move(other.values_f32);
  explicit_nodes = std::move(other.explicit_nodes);
  explicit_rows = std::move(other.explicit_rows);
  ground_truth = std::move(other.ground_truth);
  accounting_ = std::move(other.accounting_);
  counted_bytes_ = other.counted_bytes_;
  other.accounting_ = nullptr;
  other.counted_bytes_ = 0;
  return *this;
}

ShardStreamReader::ShardStreamReader()
    : accounting_(std::make_shared<internal::ShardByteAccounting>()) {}

std::optional<ShardStreamReader> ShardStreamReader::Open(
    const std::string& manifest_path, std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(manifest_path, &bytes, error)) {
    return std::nullopt;
  }
  auto manifest = std::make_shared<internal::ShardManifest>();
  if (!internal::ParseShardManifest(manifest_path, bytes,
                                    kShardFormatVersionV2, manifest.get(),
                                    error)) {
    return std::nullopt;
  }
  // Same coupling gate the bulk loader applies, so a manifest the
  // streaming path accepts is exactly one LoadShardedSnapshot accepts.
  if (!internal::CheckCouplingResidual(manifest_path, manifest->coupling,
                                       manifest->k, error)) {
    return std::nullopt;
  }
  ShardStreamReader reader;
  reader.manifest_path_ = manifest_path;
  reader.manifest_ = std::move(manifest);
  return reader;
}

std::int64_t ShardStreamReader::num_shards() const {
  return static_cast<std::int64_t>(manifest_->entries.size());
}
std::int64_t ShardStreamReader::num_nodes() const {
  return manifest_->num_nodes;
}
std::int64_t ShardStreamReader::k() const { return manifest_->k; }
std::int64_t ShardStreamReader::nnz() const { return manifest_->nnz; }
std::int64_t ShardStreamReader::num_explicit() const {
  return manifest_->num_explicit;
}
bool ShardStreamReader::has_ground_truth() const {
  return manifest_->has_ground_truth;
}
std::uint32_t ShardStreamReader::version() const {
  return manifest_->version;
}
bool ShardStreamReader::values_f32() const { return manifest_->values_f32; }
const std::string& ShardStreamReader::name() const {
  return manifest_->name;
}
const std::string& ShardStreamReader::spec() const {
  return manifest_->spec;
}
const std::vector<double>& ShardStreamReader::coupling() const {
  return manifest_->coupling;
}

std::int64_t ShardStreamReader::row_begin(std::int64_t shard) const {
  return manifest_->entries[shard].row_begin;
}
std::int64_t ShardStreamReader::row_end(std::int64_t shard) const {
  return manifest_->entries[shard].row_end;
}

std::int64_t ShardStreamReader::block_csr_bytes(std::int64_t shard) const {
  const internal::ShardManifestEntry& entry = manifest_->entries[shard];
  const std::int64_t rows = entry.row_end - entry.row_begin;
  return (rows + 1) * 8 +
         entry.nnz * (4 + (manifest_->values_f32 ? 4 : 8));
}

std::int64_t ShardStreamReader::max_block_csr_bytes() const {
  std::int64_t max_bytes = 0;
  for (std::int64_t s = 0; s < num_shards(); ++s) {
    max_bytes = std::max(max_bytes, block_csr_bytes(s));
  }
  return max_bytes;
}

std::int64_t ShardStreamReader::resident_csr_bytes() const {
  return accounting_->resident.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::peak_resident_csr_bytes() const {
  return accounting_->peak.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::blocks_read_total() const {
  return accounting_->blocks_read.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::file_bytes_read_total() const {
  return accounting_->file_bytes_read.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::csr_bytes_read_total() const {
  return accounting_->csr_bytes_read.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::checksum_retries_total() const {
  return accounting_->checksum_retries.load(std::memory_order_relaxed);
}
std::int64_t ShardStreamReader::encoded_bytes_read_total() const {
  return accounting_->encoded_bytes_read.load(std::memory_order_relaxed);
}

bool ShardStreamReader::ReadBlock(std::int64_t shard,
                                  ShardStreamBlock* block,
                                  std::string* error) const {
  LINBP_CHECK(block != nullptr && error != nullptr);
  LINBP_CHECK(shard >= 0 && shard < num_shards());
  *block = ShardStreamBlock();
  const internal::ShardManifest& manifest = *manifest_;
  const internal::ShardManifestEntry& entry = manifest.entries[shard];
  const std::string path =
      internal::ShardSiblingPath(manifest_path_, entry.file);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(path, &bytes, error)) return false;
  internal::ShardFileHeader h;
  if (!internal::CheckShardAgainstManifest(path, bytes, manifest, shard, &h,
                                           error)) {
    // One re-read before giving up: a mismatch can be a transient
    // partial read (e.g. a writer still flushing); persistent on-disk
    // corruption fails identically on the second pass.
    accounting_->checksum_retries.fetch_add(1, std::memory_order_relaxed);
    LINBP_OBS_COUNTER_ADD("shard_stream_checksum_retries_total", 1);
    if (!internal::ReadFileBytes(path, &bytes, error)) return false;
    if (!internal::CheckShardAgainstManifest(path, bytes, manifest, shard,
                                             &h, error)) {
      return false;
    }
  }

  const std::int64_t rows = h.row_end - h.row_begin;
  const std::int64_t k = manifest.k;
  const char* payload = bytes.data() + internal::kHeaderBytes;
  std::size_t payload_size = bytes.size() - internal::kHeaderBytes;
  bool csr_ok = true;
  if (manifest.version >= 2) {
    // v2: u64-prefixed delta+varint column section, then an f64 or f32
    // value section. The decoder enforces monotone row pointers,
    // strictly increasing columns, and column bounds as it unpacks, so
    // any malformed encoding is an error return here — never a crash.
    std::uint64_t encoded_bytes = 0;
    if (payload_size < 8) {
      *error = path + ": truncated shard payload";
      *block = ShardStreamBlock();
      return false;
    }
    std::memcpy(&encoded_bytes, payload, 8);
    payload += 8;
    payload_size -= 8;
    if (encoded_bytes > payload_size) {
      *error = path + ": truncated shard payload";
      *block = ShardStreamBlock();
      return false;
    }
    block->row_ptr.resize(static_cast<std::size_t>(rows + 1));
    block->col_idx.resize(static_cast<std::size_t>(h.nnz));
    std::string what;
    if (!internal::DecodeColumnSection(
            payload, static_cast<std::size_t>(encoded_bytes), rows, h.nnz,
            manifest.num_nodes, block->row_ptr.data(),
            block->col_idx.data(), &what)) {
      *error = path + ": invalid shard column section (" + what + ")";
      *block = ShardStreamBlock();
      return false;
    }
    payload += encoded_bytes;
    payload_size -= encoded_bytes;
    internal::Cursor v2_cursor(payload, payload_size);
    csr_ok = manifest.values_f32
                 ? v2_cursor.ReadVector(&block->values_f32,
                                        static_cast<std::size_t>(h.nnz))
                 : v2_cursor.ReadVector(&block->values,
                                        static_cast<std::size_t>(h.nnz));
    if (csr_ok) {
      payload += payload_size - v2_cursor.remaining();
      payload_size = v2_cursor.remaining();
    }
  } else {
    internal::Cursor v1_cursor(payload, payload_size);
    csr_ok = v1_cursor.ReadVector(&block->row_ptr,
                                  static_cast<std::size_t>(rows + 1)) &&
             v1_cursor.ReadVector(&block->col_idx,
                                  static_cast<std::size_t>(h.nnz)) &&
             v1_cursor.ReadVector(&block->values,
                                  static_cast<std::size_t>(h.nnz));
    if (csr_ok) {
      payload += payload_size - v1_cursor.remaining();
      payload_size = v1_cursor.remaining();
    }
  }
  internal::Cursor cursor(payload, payload_size);
  const bool sections_ok =
      csr_ok &&
      cursor.ReadVector(&block->explicit_nodes,
                        static_cast<std::size_t>(h.num_explicit)) &&
      cursor.ReadVector(&block->explicit_rows,
                        static_cast<std::size_t>(h.num_explicit * k)) &&
      (!manifest.has_ground_truth ||
       cursor.ReadVector(&block->ground_truth,
                         static_cast<std::size_t>(rows)));
  if (!sections_ok || cursor.remaining() != 0) {
    *error = path + (sections_ok ? ": trailing bytes after the shard payload"
                                 : ": truncated shard payload");
    *block = ShardStreamBlock();
    return false;
  }
  block->shard = shard;
  block->row_begin = h.row_begin;
  block->row_end = h.row_end;
  // The block's CSR memory is live from here on: count it before the
  // structural sweep so the residency instrumentation never under-reports.
  block->accounting_ = accounting_;
  block->counted_bytes_ = block_csr_bytes(shard);
  accounting_->Add(block->counted_bytes_);

  // Structural validation — everything the SpMM/SpMV kernels rely on
  // (the checksum above only proves the bytes match what was written).
  auto fail = [&](const std::string& what) {
    *error = path + ": " + what;
    *block = ShardStreamBlock();
    return false;
  };
  if (block->row_ptr.front() != 0 || block->row_ptr.back() != h.nnz) {
    return fail("invalid shard row pointers");
  }
  const std::int64_t n = manifest.num_nodes;
  const bool f32 = manifest.values_f32;
  const auto value_at = [&](std::int64_t e) -> double {
    return f32 ? static_cast<double>(block->values_f32[e])
               : block->values[e];
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    if (block->row_ptr[r] > block->row_ptr[r + 1]) {
      return fail("invalid shard row pointers");
    }
    for (std::int64_t e = block->row_ptr[r]; e < block->row_ptr[r + 1];
         ++e) {
      const std::int64_t c = block->col_idx[e];
      if (c < 0 || c >= n || c == h.row_begin + r ||
          !std::isfinite(value_at(e)) ||
          (e > block->row_ptr[r] && block->col_idx[e - 1] >= c)) {
        return fail(
            "invalid shard payload (CSR structure, self-loop, or "
            "non-finite weights)");
      }
    }
  }
  for (std::int64_t i = 0; i < h.num_explicit; ++i) {
    const std::int64_t v = block->explicit_nodes[i];
    if (v < h.row_begin || v >= h.row_end ||
        (i > 0 && block->explicit_nodes[i - 1] >= v)) {
      return fail("invalid explicit node list");
    }
    for (std::int64_t c = 0; c < k; ++c) {
      if (!std::isfinite(block->explicit_rows[i * k + c])) {
        return fail("non-finite explicit belief");
      }
    }
  }
  for (const std::int32_t cls : block->ground_truth) {
    if (cls < -1 || cls >= k) {
      return fail("ground-truth class out of range");
    }
  }
  // Count the completed read (cumulative totals are success-only, so
  // they sum consistently with the blocks actually handed out).
  const std::int64_t file_bytes = static_cast<std::int64_t>(bytes.size());
  accounting_->blocks_read.fetch_add(1, std::memory_order_relaxed);
  accounting_->file_bytes_read.fetch_add(file_bytes,
                                         std::memory_order_relaxed);
  accounting_->csr_bytes_read.fetch_add(block->counted_bytes_,
                                        std::memory_order_relaxed);
  LINBP_OBS_COUNTER_ADD("shard_stream_blocks_read_total", 1);
  LINBP_OBS_COUNTER_ADD("shard_stream_bytes_read_total", file_bytes);
  LINBP_OBS_COUNTER_ADD("shard_stream_csr_bytes_total",
                        block->counted_bytes_);
  if (manifest.version >= 2) {
    const std::int64_t encoded =
        file_bytes - static_cast<std::int64_t>(internal::kHeaderBytes);
    accounting_->encoded_bytes_read.fetch_add(encoded,
                                              std::memory_order_relaxed);
    LINBP_OBS_COUNTER_ADD("shard_stream_encoded_bytes_total", encoded);
  }
  return true;
}

ShardBlockCache::ShardBlockCache(std::int64_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

std::int64_t ShardBlockCache::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_bytes_;
}

std::shared_ptr<const ShardStreamBlock> ShardBlockCache::Lookup(
    std::int64_t shard) {
  if (budget_bytes_ <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(shard);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second.stamp = ++next_stamp_;
  hits_.fetch_add(1, std::memory_order_relaxed);
  LINBP_OBS_COUNTER_ADD("shard_stream_cache_hits_total", 1);
  return it->second.block;
}

void ShardBlockCache::Insert(std::int64_t shard,
                             std::shared_ptr<const ShardStreamBlock> block) {
  if (budget_bytes_ <= 0 || block == nullptr) return;
  const std::int64_t bytes = block->resident_csr_bytes();
  // A block larger than the whole budget can never fit; caching it
  // anyway would turn the budget into a no-op.
  if (bytes > budget_bytes_) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = entries_.find(shard);
  if (existing != entries_.end()) {
    // Concurrent readers can decode the same shard; keep the first.
    existing->second.stamp = ++next_stamp_;
    return;
  }
  while (cached_bytes_ + bytes > budget_bytes_ && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.stamp < victim->second.stamp) victim = it;
    }
    cached_bytes_ -= victim->second.block->resident_csr_bytes();
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    LINBP_OBS_COUNTER_ADD("shard_stream_cache_evictions_total", 1);
  }
  cached_bytes_ += bytes;
  entries_.emplace(shard, Entry{std::move(block), ++next_stamp_});
}

}  // namespace dataset
}  // namespace linbp
