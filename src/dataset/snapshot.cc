#include "src/dataset/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace linbp {
namespace dataset {
namespace {

constexpr char kMagic[8] = {'L', 'I', 'N', 'B', 'P', 'S', 'N', 'P'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kEndianTagSwapped = 0x04030201u;
constexpr std::uint32_t kFlagGroundTruth = 1u;
constexpr std::size_t kHeaderBytes = 64;
// Far above any real class count; bounds k before allocating k*k doubles.
constexpr std::int64_t kMaxClasses = 1024;

std::uint64_t Fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
void AppendPod(const T* data, std::size_t count, std::vector<char>* out) {
  const std::size_t bytes = count * sizeof(T);
  const std::size_t offset = out->size();
  out->resize(offset + bytes);
  if (bytes > 0) std::memcpy(out->data() + offset, data, bytes);
}

void AppendString(const std::string& s, std::vector<char>* out) {
  const std::uint32_t length = static_cast<std::uint32_t>(s.size());
  AppendPod(&length, 1, out);
  AppendPod(s.data(), s.size(), out);
}

/// Bounds-checked sequential reader over the payload bytes.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), remaining_(size) {}

  template <typename T>
  bool Read(T* out, std::size_t count) {
    // Division, not multiplication: a crafted header count must not wrap
    // the byte total around size_t and slip past the bound.
    if (count > remaining_ / sizeof(T)) return false;
    const std::size_t bytes = count * sizeof(T);
    if (bytes > 0) std::memcpy(out, data_, bytes);
    data_ += bytes;
    remaining_ -= bytes;
    return true;
  }

  template <typename T>
  bool ReadVector(std::vector<T>* out, std::size_t count) {
    if (count > remaining_ / sizeof(T)) return false;
    out->resize(count);
    return Read(out->data(), count);
  }

  bool ReadString(std::string* out) {
    std::uint32_t length = 0;
    if (!Read(&length, 1)) return false;
    if (length > remaining_) return false;
    out->assign(data_, length);
    data_ += length;
    remaining_ -= length;
    return true;
  }

  std::size_t remaining() const { return remaining_; }

 private:
  const char* data_;
  std::size_t remaining_;
};

struct Header {
  std::uint32_t version = 0;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  std::uint32_t flags = 0;
  std::uint64_t checksum = 0;
};

void WriteHeader(const Header& h, char* out) {
  std::memcpy(out, kMagic, 8);
  std::memcpy(out + 8, &h.version, 4);
  std::memcpy(out + 12, &kEndianTag, 4);
  std::memcpy(out + 16, &h.num_nodes, 8);
  std::memcpy(out + 24, &h.k, 8);
  std::memcpy(out + 32, &h.nnz, 8);
  std::memcpy(out + 40, &h.num_explicit, 8);
  std::memcpy(out + 48, &h.flags, 4);
  const std::uint32_t reserved = 0;
  std::memcpy(out + 52, &reserved, 4);
  std::memcpy(out + 56, &h.checksum, 8);
}

bool ParseHeader(const std::string& path, const char* data, std::size_t size,
                 Header* h, std::string* error) {
  if (size < kHeaderBytes) {
    *error = path + ": truncated snapshot (shorter than the header)";
    return false;
  }
  if (std::memcmp(data, kMagic, 8) != 0) {
    *error = path + ": not a LinBP snapshot (bad magic)";
    return false;
  }
  std::uint32_t endian = 0;
  std::memcpy(&endian, data + 12, 4);
  if (endian == kEndianTagSwapped) {
    *error = path + ": big-endian snapshot is not supported";
    return false;
  }
  if (endian != kEndianTag) {
    *error = path + ": corrupted header (bad endian tag)";
    return false;
  }
  std::memcpy(&h->version, data + 8, 4);
  if (h->version != kSnapshotVersion) {
    *error = path + ": unsupported snapshot version " +
             std::to_string(h->version) + " (expected " +
             std::to_string(kSnapshotVersion) + ")";
    return false;
  }
  std::memcpy(&h->num_nodes, data + 16, 8);
  std::memcpy(&h->k, data + 24, 8);
  std::memcpy(&h->nnz, data + 32, 8);
  std::memcpy(&h->num_explicit, data + 40, 8);
  std::memcpy(&h->flags, data + 48, 4);
  std::memcpy(&h->checksum, data + 56, 8);
  if (h->num_nodes < 0 ||
      h->num_nodes > std::numeric_limits<std::int32_t>::max() || h->k < 1 ||
      h->k > kMaxClasses || h->nnz < 0 || h->num_explicit < 0 ||
      h->num_explicit > h->num_nodes) {
    *error = path + ": corrupted header (counts out of range)";
    return false;
  }
  if ((h->flags & ~kFlagGroundTruth) != 0) {
    *error = path + ": corrupted header (unknown flags)";
    return false;
  }
  return true;
}

bool ReadFileBytes(const std::string& path, std::vector<char>* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  const std::streamoff size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    *error = path + ": read failed";
    return false;
  }
  return true;
}

}  // namespace

bool SaveSnapshot(const Scenario& scenario, const std::string& path,
                  std::string* error) {
  LINBP_CHECK(error != nullptr);
  LINBP_CHECK(scenario.k >= 1 && scenario.k <= kMaxClasses);
  LINBP_CHECK(scenario.coupling_residual.rows() == scenario.k &&
              scenario.coupling_residual.cols() == scenario.k);
  const Graph& graph = scenario.graph;
  const SparseMatrix& adjacency = graph.adjacency();
  LINBP_CHECK(scenario.explicit_residuals.rows() == graph.num_nodes() &&
              scenario.explicit_residuals.cols() == scenario.k);
  LINBP_CHECK(!scenario.HasGroundTruth() ||
              static_cast<std::int64_t>(scenario.ground_truth.size()) ==
                  graph.num_nodes());

  std::vector<char> payload;
  AppendString(scenario.name, &payload);
  AppendString(scenario.spec, &payload);
  AppendPod(scenario.coupling_residual.data().data(),
            static_cast<std::size_t>(scenario.k * scenario.k), &payload);
  AppendPod(adjacency.row_ptr().data(), adjacency.row_ptr().size(), &payload);
  AppendPod(adjacency.col_idx().data(), adjacency.col_idx().size(), &payload);
  AppendPod(adjacency.values().data(), adjacency.values().size(), &payload);
  AppendPod(scenario.explicit_nodes.data(), scenario.explicit_nodes.size(),
            &payload);
  // Only the labeled rows of the (mostly zero) belief matrix are stored.
  std::vector<double> rows;
  rows.reserve(scenario.explicit_nodes.size() *
               static_cast<std::size_t>(scenario.k));
  for (const std::int64_t v : scenario.explicit_nodes) {
    LINBP_CHECK(v >= 0 && v < graph.num_nodes());
    for (std::int64_t c = 0; c < scenario.k; ++c) {
      rows.push_back(scenario.explicit_residuals.At(v, c));
    }
  }
  AppendPod(rows.data(), rows.size(), &payload);
  if (scenario.HasGroundTruth()) {
    AppendPod(scenario.ground_truth.data(), scenario.ground_truth.size(),
              &payload);
  }

  Header header;
  header.version = kSnapshotVersion;
  header.num_nodes = graph.num_nodes();
  header.k = scenario.k;
  header.nnz = adjacency.NumNonZeros();
  header.num_explicit =
      static_cast<std::int64_t>(scenario.explicit_nodes.size());
  header.flags = scenario.HasGroundTruth() ? kFlagGroundTruth : 0;
  header.checksum = Fnv1a(payload.data(), payload.size());
  char header_bytes[kHeaderBytes];
  WriteHeader(header, header_bytes);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = path + ": cannot write";
    return false;
  }
  out.write(header_bytes, kHeaderBytes);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) {
    *error = path + ": write failed";
    return false;
  }
  return true;
}

std::optional<Scenario> LoadSnapshot(const std::string& path,
                                     std::string* error,
                                     const exec::ExecContext& ctx) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!ReadFileBytes(path, &bytes, error)) return std::nullopt;
  Header header;
  if (!ParseHeader(path, bytes.data(), bytes.size(), &header, error)) {
    return std::nullopt;
  }
  const char* payload = bytes.data() + kHeaderBytes;
  const std::size_t payload_size = bytes.size() - kHeaderBytes;
  if (Fnv1a(payload, payload_size) != header.checksum) {
    *error = path + ": checksum mismatch (corrupted snapshot)";
    return std::nullopt;
  }

  const std::int64_t n = header.num_nodes;
  const std::int64_t k = header.k;
  Scenario scenario;
  scenario.k = k;
  Cursor cursor(payload, payload_size);
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int32_t> col_idx;
  std::vector<double> values;
  std::vector<double> coupling(static_cast<std::size_t>(k * k));
  std::vector<double> explicit_rows;
  std::vector<std::int32_t> ground_truth;
  const bool sections_ok =
      cursor.ReadString(&scenario.name) && cursor.ReadString(&scenario.spec) &&
      cursor.Read(coupling.data(), coupling.size()) &&
      cursor.ReadVector(&row_ptr, static_cast<std::size_t>(n + 1)) &&
      cursor.ReadVector(&col_idx, static_cast<std::size_t>(header.nnz)) &&
      cursor.ReadVector(&values, static_cast<std::size_t>(header.nnz)) &&
      cursor.ReadVector(&scenario.explicit_nodes,
                        static_cast<std::size_t>(header.num_explicit)) &&
      cursor.ReadVector(&explicit_rows,
                        static_cast<std::size_t>(header.num_explicit * k)) &&
      ((header.flags & kFlagGroundTruth) == 0 ||
       cursor.ReadVector(&ground_truth, static_cast<std::size_t>(n)));
  if (!sections_ok) {
    *error = path + ": truncated snapshot payload";
    return std::nullopt;
  }
  if (cursor.remaining() != 0) {
    *error = path + ": trailing bytes after the payload";
    return std::nullopt;
  }

  // Structural validation with error returns (the checksum only proves the
  // bytes match what was written, not that a writer was well behaved).
  // Monotonicity of the WHOLE row_ptr array must hold before any entry
  // loop below runs — together with back() == nnz it bounds every
  // [row_ptr[r], row_ptr[r+1]) range, including the mirror lookups into
  // other rows.
  std::atomic<bool> valid(true);
  if (row_ptr.front() != 0 || row_ptr.back() != header.nnz) {
    valid.store(false);
  } else {
    ctx.ParallelFor(0, n, /*min_grain=*/8192,
                    [&](std::int64_t row_begin, std::int64_t row_end) {
                      for (std::int64_t r = row_begin; r < row_end; ++r) {
                        if (row_ptr[r] > row_ptr[r + 1]) {
                          valid.store(false, std::memory_order_relaxed);
                          return;
                        }
                      }
                    });
  }
  if (!valid.load()) {
    *error = path + ": invalid CSR row pointers";
    return std::nullopt;
  }
  // Per-row entry sweep: CSR ordering, range, symmetry, finite weights.
  ctx.ParallelFor(0, n, /*min_grain=*/2048, [&](std::int64_t row_begin,
                                                std::int64_t row_end) {
    bool ok = true;
    for (std::int64_t r = row_begin; r < row_end && ok; ++r) {
      for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
        const std::int64_t c = col_idx[e];
        if (c < 0 || c >= n || c == r || !std::isfinite(values[e]) ||
            (e > row_ptr[r] && col_idx[e - 1] >= c)) {
          ok = false;
          break;
        }
        // Mirror entry (c, r) must exist with an identical value.
        const auto begin = col_idx.begin() + row_ptr[c];
        const auto end = col_idx.begin() + row_ptr[c + 1];
        const auto it =
            std::lower_bound(begin, end, static_cast<std::int32_t>(r));
        if (it == end || *it != r ||
            values[it - col_idx.begin()] != values[e]) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) valid.store(false, std::memory_order_relaxed);
  });
  if (!valid.load()) {
    *error = path + ": invalid adjacency payload (CSR structure, symmetry, "
                    "or non-finite weights)";
    return std::nullopt;
  }

  scenario.coupling_residual = DenseMatrix(k, k);
  std::copy(coupling.begin(), coupling.end(),
            scenario.coupling_residual.mutable_data().begin());
  for (std::int64_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      const double value = scenario.coupling_residual.At(i, j);
      if (!std::isfinite(value) ||
          value != scenario.coupling_residual.At(j, i)) {
        *error = path + ": invalid coupling residual";
        return std::nullopt;
      }
      row_sum += value;
    }
    if (std::abs(row_sum) > 1e-9) {
      *error = path + ": invalid coupling residual";
      return std::nullopt;
    }
  }

  scenario.explicit_residuals = DenseMatrix(n, k);
  for (std::size_t i = 0; i < scenario.explicit_nodes.size(); ++i) {
    const std::int64_t v = scenario.explicit_nodes[i];
    if (v < 0 || v >= n ||
        (i > 0 && scenario.explicit_nodes[i - 1] >= v)) {
      *error = path + ": invalid explicit node list";
      return std::nullopt;
    }
    for (std::int64_t c = 0; c < k; ++c) {
      const double b = explicit_rows[i * k + c];
      if (!std::isfinite(b)) {
        *error = path + ": non-finite explicit belief";
        return std::nullopt;
      }
      scenario.explicit_residuals.At(v, c) = b;
    }
  }

  if ((header.flags & kFlagGroundTruth) != 0) {
    scenario.ground_truth.resize(n);
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int32_t cls = ground_truth[v];
      if (cls < -1 || cls >= k) {
        *error = path + ": ground-truth class out of range";
        return std::nullopt;
      }
      scenario.ground_truth[v] = cls;
    }
  }

  // The payload passed full validation above, so the trusted adopt paths
  // apply — re-running the CHECKed sweeps would just double the cost of
  // the format's reason to exist. Edge-list and degree reconstruction
  // still fan out on ctx.
  scenario.graph = Graph::FromValidatedAdjacency(
      SparseMatrix::FromValidatedCsr(n, n, std::move(row_ptr),
                                     std::move(col_idx), std::move(values)),
      ctx);
  return scenario;
}

std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!ReadFileBytes(path, &bytes, error)) return std::nullopt;
  Header header;
  if (!ParseHeader(path, bytes.data(), bytes.size(), &header, error)) {
    return std::nullopt;
  }
  SnapshotInfo info;
  info.version = header.version;
  info.num_nodes = header.num_nodes;
  info.k = header.k;
  info.nnz = header.nnz;
  info.num_explicit = header.num_explicit;
  info.has_ground_truth = (header.flags & kFlagGroundTruth) != 0;
  info.file_bytes = static_cast<std::int64_t>(bytes.size());
  Cursor cursor(bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
  if (!cursor.ReadString(&info.name) || !cursor.ReadString(&info.spec)) {
    *error = path + ": truncated snapshot payload";
    return std::nullopt;
  }
  return info;
}

}  // namespace dataset
}  // namespace linbp
