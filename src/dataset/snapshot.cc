#include "src/dataset/snapshot.h"

#include <cstring>
#include <utility>
#include <vector>

#include "src/dataset/format_internal.h"
#include "src/util/check.h"

namespace linbp {
namespace dataset {
namespace {

using internal::AppendPod;
using internal::AppendString;
using internal::Cursor;
using internal::Fnv1a;
using internal::kFlagGroundTruth;
using internal::kHeaderBytes;
using internal::kMaxClasses;

constexpr char kMagic[8] = {'L', 'I', 'N', 'B', 'P', 'S', 'N', 'P'};

struct Header {
  std::uint32_t version = 0;
  std::int64_t num_nodes = 0;
  std::int64_t k = 0;
  std::int64_t nnz = 0;
  std::int64_t num_explicit = 0;
  std::uint32_t flags = 0;
  std::uint64_t checksum = 0;
};

void WriteHeader(const Header& h, char* out) {
  std::memcpy(out, kMagic, 8);
  std::memcpy(out + 8, &h.version, 4);
  std::memcpy(out + 12, &internal::kEndianTag, 4);
  std::memcpy(out + 16, &h.num_nodes, 8);
  std::memcpy(out + 24, &h.k, 8);
  std::memcpy(out + 32, &h.nnz, 8);
  std::memcpy(out + 40, &h.num_explicit, 8);
  std::memcpy(out + 48, &h.flags, 4);
  const std::uint32_t reserved = 0;
  std::memcpy(out + 52, &reserved, 4);
  std::memcpy(out + 56, &h.checksum, 8);
}

bool ParseHeader(const std::string& path, const char* data, std::size_t size,
                 Header* h, std::string* error) {
  if (!internal::CheckMagicVersionEndian(path, data, size, kMagic,
                                         kSnapshotVersion, "snapshot",
                                         error)) {
    return false;
  }
  std::memcpy(&h->version, data + 8, 4);
  std::memcpy(&h->num_nodes, data + 16, 8);
  std::memcpy(&h->k, data + 24, 8);
  std::memcpy(&h->nnz, data + 32, 8);
  std::memcpy(&h->num_explicit, data + 40, 8);
  std::memcpy(&h->flags, data + 48, 4);
  std::memcpy(&h->checksum, data + 56, 8);
  return internal::CheckHeaderCounts(path, h->num_nodes, h->k, h->nnz,
                                     h->num_explicit, h->flags,
                                     internal::kFlagGroundTruth, "header",
                                     error);
}

}  // namespace

bool SaveSnapshot(const Scenario& scenario, const std::string& path,
                  std::string* error) {
  LINBP_CHECK(error != nullptr);
  LINBP_CHECK(scenario.k >= 1 && scenario.k <= kMaxClasses);
  LINBP_CHECK(scenario.coupling_residual.rows() == scenario.k &&
              scenario.coupling_residual.cols() == scenario.k);
  const Graph& graph = scenario.graph;
  const SparseMatrix& adjacency = graph.adjacency();
  LINBP_CHECK(scenario.explicit_residuals.rows() == graph.num_nodes() &&
              scenario.explicit_residuals.cols() == scenario.k);
  LINBP_CHECK(!scenario.HasGroundTruth() ||
              static_cast<std::int64_t>(scenario.ground_truth.size()) ==
                  graph.num_nodes());

  std::vector<char> payload;
  AppendString(scenario.name, &payload);
  AppendString(scenario.spec, &payload);
  AppendPod(scenario.coupling_residual.data().data(),
            static_cast<std::size_t>(scenario.k * scenario.k), &payload);
  AppendPod(adjacency.row_ptr().data(), adjacency.row_ptr().size(), &payload);
  AppendPod(adjacency.col_idx().data(), adjacency.col_idx().size(), &payload);
  AppendPod(adjacency.values().data(), adjacency.values().size(), &payload);
  AppendPod(scenario.explicit_nodes.data(), scenario.explicit_nodes.size(),
            &payload);
  // Only the labeled rows of the (mostly zero) belief matrix are stored.
  std::vector<double> rows;
  rows.reserve(scenario.explicit_nodes.size() *
               static_cast<std::size_t>(scenario.k));
  for (const std::int64_t v : scenario.explicit_nodes) {
    LINBP_CHECK(v >= 0 && v < graph.num_nodes());
    for (std::int64_t c = 0; c < scenario.k; ++c) {
      rows.push_back(scenario.explicit_residuals.At(v, c));
    }
  }
  AppendPod(rows.data(), rows.size(), &payload);
  if (scenario.HasGroundTruth()) {
    AppendPod(scenario.ground_truth.data(), scenario.ground_truth.size(),
              &payload);
  }

  Header header;
  header.version = kSnapshotVersion;
  header.num_nodes = graph.num_nodes();
  header.k = scenario.k;
  header.nnz = adjacency.NumNonZeros();
  header.num_explicit =
      static_cast<std::int64_t>(scenario.explicit_nodes.size());
  header.flags = scenario.HasGroundTruth() ? kFlagGroundTruth : 0;
  header.checksum = Fnv1a(payload.data(), payload.size());
  char header_bytes[kHeaderBytes];
  WriteHeader(header, header_bytes);
  return internal::WriteFileDurably(path, header_bytes, kHeaderBytes, payload,
                                    error);
}

std::optional<Scenario> LoadSnapshot(const std::string& path,
                                     std::string* error,
                                     const exec::ExecContext& ctx) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(path, &bytes, error)) return std::nullopt;
  Header header;
  if (!ParseHeader(path, bytes.data(), bytes.size(), &header, error)) {
    return std::nullopt;
  }
  const char* payload = bytes.data() + kHeaderBytes;
  const std::size_t payload_size = bytes.size() - kHeaderBytes;
  if (Fnv1a(payload, payload_size) != header.checksum) {
    *error = path + ": checksum mismatch (corrupted snapshot)";
    return std::nullopt;
  }

  const std::int64_t n = header.num_nodes;
  const std::int64_t k = header.k;
  internal::ScenarioParts parts;
  parts.num_nodes = n;
  parts.k = k;
  parts.has_ground_truth = (header.flags & kFlagGroundTruth) != 0;
  parts.coupling.resize(static_cast<std::size_t>(k * k));
  Cursor cursor(payload, payload_size);
  const bool sections_ok =
      cursor.ReadString(&parts.name) && cursor.ReadString(&parts.spec) &&
      cursor.Read(parts.coupling.data(), parts.coupling.size()) &&
      cursor.ReadVector(&parts.row_ptr, static_cast<std::size_t>(n + 1)) &&
      cursor.ReadVector(&parts.col_idx,
                        static_cast<std::size_t>(header.nnz)) &&
      cursor.ReadVector(&parts.values, static_cast<std::size_t>(header.nnz)) &&
      cursor.ReadVector(&parts.explicit_nodes,
                        static_cast<std::size_t>(header.num_explicit)) &&
      cursor.ReadVector(&parts.explicit_rows,
                        static_cast<std::size_t>(header.num_explicit * k)) &&
      (!parts.has_ground_truth ||
       cursor.ReadVector(&parts.ground_truth, static_cast<std::size_t>(n)));
  if (!sections_ok) {
    *error = path + ": truncated snapshot payload";
    return std::nullopt;
  }
  if (cursor.remaining() != 0) {
    *error = path + ": trailing bytes after the payload";
    return std::nullopt;
  }
  return internal::ValidateAndAssembleScenario(path, std::move(parts), ctx,
                                               error);
}

std::optional<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                             std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(path, &bytes, error)) return std::nullopt;
  Header header;
  if (!ParseHeader(path, bytes.data(), bytes.size(), &header, error)) {
    return std::nullopt;
  }
  SnapshotInfo info;
  info.version = header.version;
  info.num_nodes = header.num_nodes;
  info.k = header.k;
  info.nnz = header.nnz;
  info.num_explicit = header.num_explicit;
  info.has_ground_truth = (header.flags & kFlagGroundTruth) != 0;
  info.file_bytes = static_cast<std::int64_t>(bytes.size());
  Cursor cursor(bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
  if (!cursor.ReadString(&info.name) || !cursor.ReadString(&info.spec)) {
    *error = path + ": truncated snapshot payload";
    return std::nullopt;
  }
  return info;
}

}  // namespace dataset
}  // namespace linbp
