#include "src/dataset/workloads.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>
#include <utility>

#include "src/util/check.h"
#include "src/util/random.h"

namespace linbp {
namespace dataset {
namespace {

// Key for de-duplicating undirected edges (node ids fit in 32 bits; the
// generators cap n well below 2^31 because CSR columns are int32).
std::uint64_t EdgeKey(std::int64_t u, std::int64_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
}

}  // namespace

LabeledGraph SbmGraph(std::int64_t n, std::int64_t k, double avg_degree,
                      double intra_fraction, std::uint64_t seed) {
  LINBP_CHECK(k >= 2 && n >= 2 * k);
  LINBP_CHECK(avg_degree > 0.0);
  LINBP_CHECK(intra_fraction >= 0.0 && intra_fraction <= 1.0);
  Rng rng(seed);
  // Node v belongs to class v % k, so class c has floor(n/k) members plus
  // one when c < n % k; member m of class c is node c + m * k.
  std::vector<std::int64_t> class_size(k);
  for (std::int64_t c = 0; c < k; ++c) {
    class_size[c] = n / k + (c < n % k ? 1 : 0);
  }
  auto member = [&](std::int64_t c, std::int64_t m) { return c + m * k; };

  const std::int64_t target =
      std::max<std::int64_t>(1, std::llround(0.5 * avg_degree *
                                             static_cast<double>(n)));
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  edges.reserve(target);
  // Rejection sampling with an attempt cap so dense parameterizations
  // terminate (the cap is never hit at the sparse densities we generate).
  std::int64_t attempts = 40 * target + 1000;
  while (static_cast<std::int64_t>(edges.size()) < target && attempts-- > 0) {
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (rng.NextBernoulli(intra_fraction)) {
      const std::int64_t c =
          static_cast<std::int64_t>(rng.NextBounded(static_cast<std::uint64_t>(k)));
      if (class_size[c] < 2) continue;
      const std::int64_t m1 = static_cast<std::int64_t>(
          rng.NextBounded(static_cast<std::uint64_t>(class_size[c])));
      std::int64_t m2 = m1;
      while (m2 == m1) {
        m2 = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(class_size[c])));
      }
      u = member(c, m1);
      v = member(c, m2);
    } else {
      const std::int64_t c1 =
          static_cast<std::int64_t>(rng.NextBounded(static_cast<std::uint64_t>(k)));
      std::int64_t c2 = c1;
      while (c2 == c1) {
        c2 = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(k)));
      }
      u = member(c1, static_cast<std::int64_t>(rng.NextBounded(
                         static_cast<std::uint64_t>(class_size[c1]))));
      v = member(c2, static_cast<std::int64_t>(rng.NextBounded(
                         static_cast<std::uint64_t>(class_size[c2]))));
    }
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v, 1.0});
  }

  LabeledGraph out;
  out.graph = Graph(n, edges);
  out.labels.resize(n);
  for (std::int64_t v = 0; v < n; ++v) {
    out.labels[v] = static_cast<int>(v % k);
  }
  return out;
}

LabeledGraph RmatGraph(int scale, double edge_factor, std::int64_t k,
                       double a, double b, double c, std::uint64_t seed) {
  LINBP_CHECK(scale >= 1 && scale <= 30);
  LINBP_CHECK(edge_factor > 0.0);
  LINBP_CHECK(k >= 1);
  LINBP_CHECK(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0);
  const std::int64_t n = std::int64_t{1} << scale;
  const std::int64_t target = std::max<std::int64_t>(
      1, std::llround(edge_factor * static_cast<double>(n)));
  Rng rng(seed);
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  edges.reserve(target);
  std::int64_t attempts = 40 * target + 1000;
  while (static_cast<std::int64_t>(edges.size()) < target && attempts-- > 0) {
    std::int64_t u = 0;
    std::int64_t v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      // Quadrants (u_bit, v_bit): a -> (0,0), b -> (0,1), c -> (1,0),
      // d = 1 - a - b - c -> (1,1).
      const int u_bit = r >= a + b ? 1 : 0;
      const int v_bit = (r >= a && r < a + b) || r >= a + b + c ? 1 : 0;
      u = (u << 1) | u_bit;
      v = (v << 1) | v_bit;
    }
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v, 1.0});
  }

  LabeledGraph out;
  out.graph = Graph(n, edges);
  out.labels.assign(n, -1);

  // Plant labels as BFS Voronoi cells: center i seeds class i % k, every
  // reachable node takes the class of its nearest center (FIFO BFS breaks
  // distance ties deterministically).
  std::vector<std::int64_t> centers;
  std::int64_t center_attempts = 100 * k + 100;
  while (static_cast<std::int64_t>(centers.size()) < k &&
         center_attempts-- > 0) {
    const std::int64_t v = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(n)));
    if (out.graph.Degree(v) == 0) continue;
    if (std::find(centers.begin(), centers.end(), v) != centers.end()) {
      continue;
    }
    centers.push_back(v);
  }
  const auto& row_ptr = out.graph.adjacency().row_ptr();
  const auto& col_idx = out.graph.adjacency().col_idx();
  std::deque<std::int64_t> queue;
  for (std::size_t i = 0; i < centers.size(); ++i) {
    out.labels[centers[i]] = static_cast<int>(i % k);
    queue.push_back(centers[i]);
  }
  while (!queue.empty()) {
    const std::int64_t v = queue.front();
    queue.pop_front();
    for (std::int64_t e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
      const std::int64_t t = col_idx[e];
      if (out.labels[t] >= 0) continue;
      out.labels[t] = out.labels[v];
      queue.push_back(t);
    }
  }
  return out;
}

LabeledGraph FraudBipartiteGraph(std::int64_t num_users,
                                 std::int64_t num_products,
                                 double fraud_fraction, double shill_fraction,
                                 double reviews_per_user, double camouflage,
                                 std::uint64_t seed) {
  LINBP_CHECK(num_users >= 2 && num_products >= 2);
  LINBP_CHECK(fraud_fraction > 0.0 && fraud_fraction < 1.0);
  LINBP_CHECK(shill_fraction > 0.0 && shill_fraction < 1.0);
  LINBP_CHECK(reviews_per_user > 0.0);
  LINBP_CHECK(camouflage >= 0.0 && camouflage <= 1.0);
  const std::int64_t fraudsters = std::max<std::int64_t>(
      1, std::llround(fraud_fraction * static_cast<double>(num_users)));
  const std::int64_t honest = num_users - fraudsters;
  const std::int64_t shill = std::max<std::int64_t>(
      1, std::llround(shill_fraction * static_cast<double>(num_products)));
  const std::int64_t legit = num_products - shill;
  LINBP_CHECK(honest >= 1 && legit >= 1);
  const std::int64_t n = num_users + num_products;
  const std::int64_t legit_base = num_users;
  const std::int64_t shill_base = num_users + legit;

  Rng rng(seed);
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  for (std::int64_t u = 0; u < num_users; ++u) {
    const bool is_fraudster = u >= honest;
    // reviews_per_user is an expectation; the fractional part becomes one
    // extra Bernoulli review.
    std::int64_t reviews =
        static_cast<std::int64_t>(std::floor(reviews_per_user));
    if (rng.NextBernoulli(reviews_per_user - std::floor(reviews_per_user))) {
      ++reviews;
    }
    for (std::int64_t i = 0; i < reviews; ++i) {
      // A handful of retries per review keeps the expected degree close
      // to the target; a duplicate after that is simply skipped.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const bool off_profile = rng.NextBernoulli(camouflage);
        const bool pick_shill = is_fraudster ? !off_profile : off_profile;
        const std::int64_t p =
            pick_shill
                ? shill_base + static_cast<std::int64_t>(rng.NextBounded(
                                   static_cast<std::uint64_t>(shill)))
                : legit_base + static_cast<std::int64_t>(rng.NextBounded(
                                   static_cast<std::uint64_t>(legit)));
        if (!used.insert(EdgeKey(u, p)).second) continue;
        edges.push_back({u, p, 1.0});
        break;
      }
    }
  }

  LabeledGraph out;
  out.graph = Graph(n, edges);
  out.labels.assign(n, 0);
  for (std::int64_t u = honest; u < num_users; ++u) out.labels[u] = 2;
  for (std::int64_t p = shill_base; p < n; ++p) out.labels[p] = 1;
  return out;
}

DenseMatrix UniformHeterophilyResidual(std::int64_t k, double strength) {
  return UniformHomophilyCoupling(k, strength).residual().Scale(-1.0);
}

}  // namespace dataset
}  // namespace linbp
