#include "src/dataset/scenario.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/graph/beliefs.h"
#include "src/la/matrix_io.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace linbp {
namespace dataset {

CouplingMatrix Scenario::Coupling() const {
  return CouplingMatrix::FromResidual(coupling_residual);
}

std::int64_t Scenario::NumGroundTruthNodes() const {
  std::int64_t count = 0;
  for (const int c : ground_truth) {
    if (c >= 0) ++count;
  }
  return count;
}

std::optional<ScenarioParams> ScenarioParams::Parse(const std::string& text,
                                                    std::string* error) {
  LINBP_CHECK(error != nullptr);
  ScenarioParams params;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "malformed parameter '" + item + "' (expected key=value)";
      return std::nullopt;
    }
    const std::string key = item.substr(0, eq);
    if (!params.values_.emplace(key, item.substr(eq + 1)).second) {
      *error = "duplicate parameter '" + key + "'";
      return std::nullopt;
    }
  }
  return params;
}

std::int64_t ScenarioParams::Int(const std::string& key,
                                 std::int64_t fallback) {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  const auto record_error = [&](const char* what) {
    if (value_error_.empty()) {
      value_error_ = "parameter '" + key + "' " + what + ", got '" +
                     it->second + "'";
    }
    return fallback;
  };
  // Plain decimal integers parse exactly via strtoll — a double round
  // trip would silently round magnitudes above 2^53 and casting values
  // >= 2^63 back to int64 is undefined behavior.
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (!it->second.empty() && *end == '\0') {
    if (errno == ERANGE) return record_error("is out of int64 range");
    return static_cast<std::int64_t>(parsed);
  }
  // Scientific-notation values ("1e6") go through strtod, which is only
  // exact below 2^53; larger magnitudes must be spelled out in full.
  const double value = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || *end != '\0' || !std::isfinite(value) ||
      value != std::floor(value)) {
    return record_error("expects an integer");
  }
  if (std::abs(value) >= 9007199254740992.0 /* 2^53 */) {
    return record_error("is out of exact floating-point integer range "
                        "(write the digits in full)");
  }
  return static_cast<std::int64_t>(value);
}

double ScenarioParams::Double(const std::string& key, double fallback) {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || *end != '\0' || !std::isfinite(value)) {
    if (value_error_.empty()) {
      value_error_ = "parameter '" + key + "' expects a number, got '" +
                     it->second + "'";
    }
    return fallback;
  }
  return value;
}

std::string ScenarioParams::Str(const std::string& key,
                                const std::string& fallback) {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

std::vector<std::string> ScenarioParams::UnconsumedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) {
    if (consumed_.find(key) == consumed_.end()) keys.push_back(key);
  }
  return keys;
}

std::optional<ParsedSpec> ParseScenarioSpec(const std::string& spec,
                                            std::string* error) {
  LINBP_CHECK(error != nullptr);
  const std::size_t colon = spec.find(':');
  ParsedSpec parsed;
  parsed.name = colon == std::string::npos ? spec : spec.substr(0, colon);
  if (parsed.name.empty()) {
    *error = "scenario spec has an empty name: '" + spec + "'";
    return std::nullopt;
  }
  const std::string tail =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  auto params = ScenarioParams::Parse(tail, error);
  if (!params.has_value()) return std::nullopt;
  parsed.params = std::move(*params);
  return parsed;
}

std::optional<CouplingMatrix> ResolveCouplingSpec(const std::string& spec,
                                                  std::string* error) {
  LINBP_CHECK(error != nullptr);
  if (spec == "homophily2") return HomophilyCoupling2();
  if (spec == "heterophily2") return HeterophilyCoupling2();
  if (spec == "auction") return AuctionCoupling();
  if (spec == "dblp4") return DblpCoupling();
  if (spec == "kronecker3") return KroneckerExperimentCoupling();
  const auto matrix = ReadDenseMatrix(spec, error);
  if (!matrix.has_value()) return std::nullopt;
  // Accept either a residual (rows sum to 0) or a stochastic matrix.
  double row_sum = 0.0;
  for (std::int64_t c = 0; c < matrix->cols(); ++c) {
    row_sum += matrix->At(0, c);
  }
  if (std::abs(row_sum) < 1e-6) {
    return CouplingMatrix::FromResidual(*matrix, 1e-6);
  }
  return CouplingMatrix::FromStochastic(*matrix, 1e-6);
}

void RevealGroundTruth(double labeled_fraction, double strength,
                       std::uint64_t seed, Scenario* scenario) {
  LINBP_CHECK(scenario != nullptr);
  LINBP_CHECK(scenario->HasGroundTruth());
  const std::int64_t n = scenario->graph.num_nodes();
  const std::int64_t k = scenario->k;
  LINBP_CHECK(static_cast<std::int64_t>(scenario->ground_truth.size()) == n);
  scenario->explicit_residuals = DenseMatrix(n, k);
  scenario->explicit_nodes.clear();
  Rng rng(seed);
  std::int64_t first_known = -1;
  for (std::int64_t v = 0; v < n; ++v) {
    const int cls = scenario->ground_truth[v];
    if (cls < 0) continue;
    if (first_known < 0) first_known = v;
    if (!rng.NextBernoulli(labeled_fraction)) continue;
    const std::vector<double> row = ExplicitResidualForClass(k, cls, strength);
    for (std::int64_t c = 0; c < k; ++c) {
      scenario->explicit_residuals.At(v, c) = row[c];
    }
    scenario->explicit_nodes.push_back(v);
  }
  if (scenario->explicit_nodes.empty() && first_known >= 0) {
    const int cls = scenario->ground_truth[first_known];
    const std::vector<double> row = ExplicitResidualForClass(k, cls, strength);
    for (std::int64_t c = 0; c < k; ++c) {
      scenario->explicit_residuals.At(first_known, c) = row[c];
    }
    scenario->explicit_nodes.push_back(first_known);
  }
}

}  // namespace dataset
}  // namespace linbp
