#include "src/dataset/shard.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "src/dataset/format_internal.h"
#include "src/exec/row_partition.h"
#include "src/util/check.h"

namespace linbp {
namespace dataset {
namespace {

using internal::AppendPod;
using internal::AppendString;
using internal::CheckShardAgainstManifest;
using internal::Cursor;
using internal::EncodeColumnSection;
using internal::Fnv1a;
using internal::kFlagF32Values;
using internal::kFlagGroundTruth;
using internal::kHeaderBytes;
using internal::kMaxClasses;
using internal::kShardFileMagic;
using internal::kShardManifestMagic;
using internal::ParseShardManifest;
using internal::ShardFileHeader;
using internal::ShardManifest;
using internal::ShardManifestEntry;
using internal::ShardPayloadBytes;
using internal::ShardSiblingPath;

void WriteShardHeader(const ShardFileHeader& h, std::uint32_t version,
                      char* out) {
  std::memcpy(out, kShardFileMagic, 8);
  std::memcpy(out + 8, &version, 4);
  std::memcpy(out + 12, &internal::kEndianTag, 4);
  std::memcpy(out + 16, &h.row_begin, 8);
  std::memcpy(out + 24, &h.row_end, 8);
  std::memcpy(out + 32, &h.nnz, 8);
  std::memcpy(out + 40, &h.num_explicit, 8);
  std::memcpy(out + 48, &h.flags, 4);
  std::memcpy(out + 52, &h.shard_index, 4);
  std::memcpy(out + 56, &h.checksum, 8);
}

// Reads, checks, and copies ONE shard file into its slices of the
// global arrays. `nnz_offset` / `explicit_offset` locate the shard's
// slice; the row_ptr entries it owns are [row_begin, row_end) (the
// terminating global entry row_ptr[n] is set once by the caller, so no
// two shards ever write the same element).
bool LoadOneShard(const std::string& manifest_path,
                  const ShardManifest& manifest, std::int64_t shard,
                  std::int64_t nnz_offset, std::int64_t explicit_offset,
                  internal::ScenarioParts* parts, std::string* error) {
  const ShardManifestEntry& entry = manifest.entries[shard];
  const std::string path = ShardSiblingPath(manifest_path, entry.file);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(path, &bytes, error)) return false;
  ShardFileHeader h;
  if (!CheckShardAgainstManifest(path, bytes, manifest, shard, &h, error)) {
    return false;
  }

  const std::int64_t rows = h.row_end - h.row_begin;
  const std::int64_t k = manifest.k;
  const char* payload = bytes.data() + kHeaderBytes;
  std::size_t payload_size = bytes.size() - kHeaderBytes;
  bool csr_ok = true;
  if (manifest.version >= 2) {
    // v2: u64-prefixed delta+varint column section, then the values
    // (possibly f32). The decoder writes straight into this shard's
    // col_idx slice; f32 values widen exactly into the global array.
    std::uint64_t encoded_bytes = 0;
    if (payload_size < 8) {
      *error = path + ": truncated shard payload";
      return false;
    }
    std::memcpy(&encoded_bytes, payload, 8);
    payload += 8;
    payload_size -= 8;
    if (encoded_bytes > payload_size) {
      *error = path + ": truncated shard payload";
      return false;
    }
    std::vector<std::int64_t> local_row_ptr(rows + 1);
    std::string what;
    if (!internal::DecodeColumnSection(
            payload, static_cast<std::size_t>(encoded_bytes), rows, h.nnz,
            manifest.num_nodes, local_row_ptr.data(),
            parts->col_idx.data() + nnz_offset, &what)) {
      *error = path + ": invalid shard column section (" + what + ")";
      return false;
    }
    payload += encoded_bytes;
    payload_size -= encoded_bytes;
    for (std::int64_t r = 0; r < rows; ++r) {
      parts->row_ptr[h.row_begin + r] = nnz_offset + local_row_ptr[r];
    }
    Cursor cursor(payload, payload_size);
    if (manifest.values_f32) {
      std::vector<float> narrow;
      csr_ok = cursor.ReadVector(&narrow, static_cast<std::size_t>(h.nnz));
      if (csr_ok) {
        std::copy(narrow.begin(), narrow.end(),
                  parts->values.begin() + nnz_offset);
      }
    } else {
      csr_ok = cursor.Read(parts->values.data() + nnz_offset,
                           static_cast<std::size_t>(h.nnz));
    }
    if (csr_ok) {
      payload += payload_size - cursor.remaining();
      payload_size = cursor.remaining();
    }
  } else {
    Cursor cursor(payload, payload_size);
    std::vector<std::int64_t> local_row_ptr;
    if (!cursor.ReadVector(&local_row_ptr,
                           static_cast<std::size_t>(rows + 1))) {
      *error = path + ": truncated shard payload";
      return false;
    }
    if (local_row_ptr.front() != 0 || local_row_ptr.back() != h.nnz) {
      *error = path + ": invalid shard row pointers";
      return false;
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      if (local_row_ptr[r] > local_row_ptr[r + 1]) {
        *error = path + ": invalid shard row pointers";
        return false;
      }
      parts->row_ptr[h.row_begin + r] = nnz_offset + local_row_ptr[r];
    }
    csr_ok = cursor.Read(parts->col_idx.data() + nnz_offset,
                         static_cast<std::size_t>(h.nnz)) &&
             cursor.Read(parts->values.data() + nnz_offset,
                         static_cast<std::size_t>(h.nnz));
    if (csr_ok) {
      payload += payload_size - cursor.remaining();
      payload_size = cursor.remaining();
    }
  }
  Cursor cursor(payload, payload_size);
  const bool arrays_ok =
      csr_ok &&
      cursor.Read(parts->explicit_nodes.data() + explicit_offset,
                  static_cast<std::size_t>(h.num_explicit)) &&
      cursor.Read(parts->explicit_rows.data() + explicit_offset * k,
                  static_cast<std::size_t>(h.num_explicit * k)) &&
      (!manifest.has_ground_truth ||
       cursor.Read(parts->ground_truth.data() + h.row_begin,
                   static_cast<std::size_t>(rows)));
  if (!arrays_ok) {
    *error = path + ": truncated shard payload";
    return false;
  }
  if (cursor.remaining() != 0) {
    *error = path + ": trailing bytes after the shard payload";
    return false;
  }
  // Each explicit node must belong to this shard's row block — the
  // global list is the concatenation of the per-shard slices, so this
  // is what keeps it sorted and correctly attributed.
  for (std::int64_t i = 0; i < h.num_explicit; ++i) {
    const std::int64_t v = parts->explicit_nodes[explicit_offset + i];
    if (v < h.row_begin || v >= h.row_end) {
      *error = path + ": explicit node outside the shard's row range";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ShardManifestFileName() { return "manifest.lbpm"; }

std::string ShardFileName(std::int64_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%06lld.lbpsd",
                static_cast<long long>(shard));
  return buf;
}

std::optional<ShardWriteResult> ShardSnapshot(const Scenario& scenario,
                                              std::int64_t max_shards,
                                              const std::string& dir,
                                              std::string* error,
                                              ShardCompression compression) {
  LINBP_CHECK(error != nullptr);
  LINBP_CHECK(scenario.k >= 1 && scenario.k <= kMaxClasses);
  LINBP_CHECK(scenario.coupling_residual.rows() == scenario.k &&
              scenario.coupling_residual.cols() == scenario.k);
  const Graph& graph = scenario.graph;
  const SparseMatrix& adjacency = graph.adjacency();
  LINBP_CHECK(scenario.explicit_residuals.rows() == graph.num_nodes() &&
              scenario.explicit_residuals.cols() == scenario.k);
  LINBP_CHECK(!scenario.HasGroundTruth() ||
              static_cast<std::int64_t>(scenario.ground_truth.size()) ==
                  graph.num_nodes());
  if (max_shards < 1 || max_shards > kMaxShards) {
    *error = dir + ": shard count must be in [1, " +
             std::to_string(kMaxShards) + "]";
    return std::nullopt;
  }
  const std::int64_t n = graph.num_nodes();
  if (n == 0) {
    *error = dir + ": cannot shard an empty scenario";
    return std::nullopt;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    *error = dir + ": cannot create directory (" + ec.message() + ")";
    return std::nullopt;
  }

  const exec::RowPartition partition =
      exec::RowPartition::NnzBalanced(adjacency.row_ptr(), max_shards);
  const std::int64_t num_shards = partition.num_blocks();
  const std::uint32_t version = compression == ShardCompression::kNone
                                    ? kShardFormatVersion
                                    : kShardFormatVersionV2;
  const bool values_f32 = compression == ShardCompression::kF32;
  const std::uint32_t flags =
      (scenario.HasGroundTruth() ? kFlagGroundTruth : 0) |
      (values_f32 ? kFlagF32Values : 0);
  const bool has_ground_truth = scenario.HasGroundTruth();
  const auto& row_ptr = adjacency.row_ptr();
  const auto& col_idx = adjacency.col_idx();
  const auto& values = adjacency.values();
  const auto& explicit_nodes = scenario.explicit_nodes;

  std::vector<ShardManifestEntry> entries(num_shards);
  for (std::int64_t s = 0; s < num_shards; ++s) {
    const std::int64_t row_begin = partition.begin(s);
    const std::int64_t row_end = partition.end(s);
    const std::int64_t rows = row_end - row_begin;
    const std::int64_t nnz_begin = row_ptr[row_begin];
    const std::int64_t nnz = row_ptr[row_end] - nnz_begin;
    // The explicit list is sorted, so this shard's slice is a range.
    const auto explicit_begin = std::lower_bound(
        explicit_nodes.begin(), explicit_nodes.end(), row_begin);
    const auto explicit_end = std::lower_bound(
        explicit_begin, explicit_nodes.end(), row_end);
    const std::int64_t num_explicit = explicit_end - explicit_begin;

    std::vector<char> payload;
    payload.reserve(static_cast<std::size_t>(ShardPayloadBytes(
        rows, nnz, num_explicit, scenario.k, has_ground_truth)));
    std::vector<std::int64_t> local_row_ptr(rows + 1);
    for (std::int64_t r = 0; r <= rows; ++r) {
      local_row_ptr[r] = row_ptr[row_begin + r] - nnz_begin;
    }
    if (version >= kShardFormatVersionV2) {
      std::vector<char> cols;
      EncodeColumnSection(local_row_ptr.data(), rows,
                          col_idx.data() + nnz_begin, &cols);
      const std::uint64_t encoded_bytes = cols.size();
      AppendPod(&encoded_bytes, 1, &payload);
      payload.insert(payload.end(), cols.begin(), cols.end());
      if (values_f32) {
        std::vector<float> narrow(values.begin() + nnz_begin,
                                  values.begin() + nnz_begin + nnz);
        AppendPod(narrow.data(), narrow.size(), &payload);
      } else {
        AppendPod(values.data() + nnz_begin, static_cast<std::size_t>(nnz),
                  &payload);
      }
    } else {
      AppendPod(local_row_ptr.data(), local_row_ptr.size(), &payload);
      AppendPod(col_idx.data() + nnz_begin, static_cast<std::size_t>(nnz),
                &payload);
      AppendPod(values.data() + nnz_begin, static_cast<std::size_t>(nnz),
                &payload);
    }
    AppendPod(explicit_nodes.data() + (explicit_begin -
                                       explicit_nodes.begin()),
              static_cast<std::size_t>(num_explicit), &payload);
    std::vector<double> rows_buf;
    rows_buf.reserve(static_cast<std::size_t>(num_explicit * scenario.k));
    for (auto it = explicit_begin; it != explicit_end; ++it) {
      LINBP_CHECK(*it >= 0 && *it < n);
      for (std::int64_t c = 0; c < scenario.k; ++c) {
        rows_buf.push_back(scenario.explicit_residuals.At(*it, c));
      }
    }
    AppendPod(rows_buf.data(), rows_buf.size(), &payload);
    if (has_ground_truth) {
      AppendPod(scenario.ground_truth.data() + row_begin,
                static_cast<std::size_t>(rows), &payload);
    }

    ShardFileHeader header;
    header.row_begin = row_begin;
    header.row_end = row_end;
    header.nnz = nnz;
    header.num_explicit = num_explicit;
    header.flags = flags;
    header.shard_index = static_cast<std::uint32_t>(s);
    header.checksum = Fnv1a(payload.data(), payload.size());
    char header_bytes[kHeaderBytes];
    WriteShardHeader(header, version, header_bytes);
    const std::string file = ShardFileName(s);
    if (!internal::WriteFileDurably((std::filesystem::path(dir) / file)
                                        .string(),
                                    header_bytes, kHeaderBytes, payload,
                                    error)) {
      return std::nullopt;
    }
    entries[s] = ShardManifestEntry{
        row_begin, row_end, nnz, num_explicit,
        static_cast<std::int64_t>(payload.size()), header.checksum, file};
  }

  // Manifest last: a crashed writer leaves shard files but no loadable
  // manifest, so partial output can never be mistaken for a snapshot.
  std::vector<char> payload;
  AppendString(scenario.name, &payload);
  AppendString(scenario.spec, &payload);
  AppendPod(scenario.coupling_residual.data().data(),
            static_cast<std::size_t>(scenario.k * scenario.k), &payload);
  for (const ShardManifestEntry& entry : entries) {
    AppendPod(&entry.row_begin, 1, &payload);
    AppendPod(&entry.row_end, 1, &payload);
    AppendPod(&entry.nnz, 1, &payload);
    AppendPod(&entry.num_explicit, 1, &payload);
    if (version >= kShardFormatVersionV2) {
      AppendPod(&entry.payload_bytes, 1, &payload);
    }
    AppendPod(&entry.checksum, 1, &payload);
    AppendString(entry.file, &payload);
  }
  char header_bytes[kHeaderBytes];
  std::memcpy(header_bytes, kShardManifestMagic, 8);
  std::memcpy(header_bytes + 8, &version, 4);
  std::memcpy(header_bytes + 12, &internal::kEndianTag, 4);
  const std::int64_t nnz_total = adjacency.NumNonZeros();
  const std::int64_t num_explicit_total =
      static_cast<std::int64_t>(explicit_nodes.size());
  std::memcpy(header_bytes + 16, &n, 8);
  std::memcpy(header_bytes + 24, &scenario.k, 8);
  std::memcpy(header_bytes + 32, &nnz_total, 8);
  std::memcpy(header_bytes + 40, &num_explicit_total, 8);
  std::memcpy(header_bytes + 48, &flags, 4);
  const std::uint32_t shard_count = static_cast<std::uint32_t>(num_shards);
  std::memcpy(header_bytes + 52, &shard_count, 4);
  const std::uint64_t checksum = Fnv1a(payload.data(), payload.size());
  std::memcpy(header_bytes + 56, &checksum, 8);

  ShardWriteResult result;
  result.manifest_path =
      (std::filesystem::path(dir) / ShardManifestFileName()).string();
  result.num_shards = num_shards;
  if (!internal::WriteFileDurably(result.manifest_path, header_bytes,
                                  kHeaderBytes, payload, error)) {
    return std::nullopt;
  }
  return result;
}

std::optional<Scenario> LoadShardedSnapshot(const std::string& manifest_path,
                                            std::string* error,
                                            const exec::ExecContext& ctx) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(manifest_path, &bytes, error)) {
    return std::nullopt;
  }
  ShardManifest manifest;
  if (!ParseShardManifest(manifest_path, bytes, kShardFormatVersionV2,
                          &manifest, error)) {
    return std::nullopt;
  }
  bytes.clear();
  bytes.shrink_to_fit();

  const std::int64_t num_shards =
      static_cast<std::int64_t>(manifest.entries.size());
  // Preflight: every shard file must be large enough for the counts its
  // manifest entry declares. This bounds the global allocations below by
  // actual on-disk bytes, so a checksum-consistent but hostile manifest
  // cannot drive the loader into a multi-terabyte resize (the same
  // guarantee the monolithic loader gets from its bounds-checked Cursor).
  for (std::int64_t s = 0; s < num_shards; ++s) {
    const ShardManifestEntry& entry = manifest.entries[s];
    const std::string shard_path =
        ShardSiblingPath(manifest_path, entry.file);
    std::error_code ec;
    const std::uintmax_t file_size =
        std::filesystem::file_size(shard_path, ec);
    if (ec) {
      *error = shard_path + ": cannot open";
      return std::nullopt;
    }
    // entry.payload_bytes is either computed from the counts (v1) or
    // declared but bounds-checked against them during parse (v2), so
    // either way it ties the decoded allocation to real file bytes.
    const std::int64_t needed =
        static_cast<std::int64_t>(internal::kHeaderBytes) +
        entry.payload_bytes;
    if (file_size < static_cast<std::uintmax_t>(needed)) {
      *error = shard_path + ": truncated shard payload";
      return std::nullopt;
    }
  }
  // Per-shard slice offsets (exclusive prefix sums over the manifest).
  std::vector<std::int64_t> nnz_offset(num_shards + 1, 0);
  std::vector<std::int64_t> explicit_offset(num_shards + 1, 0);
  for (std::int64_t s = 0; s < num_shards; ++s) {
    nnz_offset[s + 1] = nnz_offset[s] + manifest.entries[s].nnz;
    explicit_offset[s + 1] =
        explicit_offset[s] + manifest.entries[s].num_explicit;
  }

  internal::ScenarioParts parts;
  parts.name = manifest.name;
  parts.spec = manifest.spec;
  parts.num_nodes = manifest.num_nodes;
  parts.k = manifest.k;
  parts.has_ground_truth = manifest.has_ground_truth;
  parts.coupling = std::move(manifest.coupling);
  parts.row_ptr.resize(manifest.num_nodes + 1);
  parts.col_idx.resize(manifest.nnz);
  parts.values.resize(manifest.nnz);
  parts.explicit_nodes.resize(manifest.num_explicit);
  parts.explicit_rows.resize(manifest.num_explicit * manifest.k);
  if (manifest.has_ground_truth) {
    parts.ground_truth.resize(manifest.num_nodes);
  }
  parts.row_ptr[manifest.num_nodes] = manifest.nnz;

  // One task per shard: each reads its file and writes disjoint slices
  // of the global arrays, so the fan-out is race-free by construction.
  std::vector<std::string> shard_errors(num_shards);
  ctx.RunBlocks(num_shards, [&](std::int64_t s) {
    LoadOneShard(manifest_path, manifest, s, nnz_offset[s],
                 explicit_offset[s], &parts, &shard_errors[s]);
  });
  for (std::int64_t s = 0; s < num_shards; ++s) {
    if (!shard_errors[s].empty()) {
      *error = shard_errors[s];
      return std::nullopt;
    }
  }

  // Global validation (structure, cross-shard symmetry, coupling,
  // beliefs, truth) runs once, in parallel, then the trusted adopt
  // paths take over — the same code path the monolithic loader uses, so
  // a sharded load is bit-identical to the monolithic one.
  return internal::ValidateAndAssembleScenario(manifest_path,
                                               std::move(parts), ctx, error);
}

std::optional<ShardManifestInfo> ReadShardManifestInfo(
    const std::string& path, std::string* error) {
  LINBP_CHECK(error != nullptr);
  std::vector<char> bytes;
  if (!internal::ReadFileBytes(path, &bytes, error)) return std::nullopt;
  ShardManifest manifest;
  if (!ParseShardManifest(path, bytes, kShardFormatVersionV2, &manifest,
                          error)) {
    return std::nullopt;
  }
  ShardManifestInfo info;
  info.version = manifest.version;
  info.num_nodes = manifest.num_nodes;
  info.k = manifest.k;
  info.nnz = manifest.nnz;
  info.num_explicit = manifest.num_explicit;
  info.has_ground_truth = manifest.has_ground_truth;
  info.values_f32 = manifest.values_f32;
  info.file_bytes = manifest.file_bytes;
  info.name = manifest.name;
  info.spec = manifest.spec;
  info.shards.reserve(manifest.entries.size());
  for (const ShardManifestEntry& entry : manifest.entries) {
    // Declared payload sizes, not on-disk file sizes: the info call
    // stays manifest-only (no shard I/O). The decoded bytes are what a
    // full load would have to hold resident; for v1 they equal the
    // on-disk payload.
    const std::int64_t decoded_bytes = internal::ShardDecodedPayloadBytes(
        entry.row_end - entry.row_begin, entry.nnz, entry.num_explicit,
        manifest.k, manifest.has_ground_truth, manifest.values_f32);
    info.total_shard_payload_bytes += decoded_bytes;
    info.total_encoded_payload_bytes += entry.payload_bytes;
    info.shards.push_back(ShardRangeInfo{entry.row_begin, entry.row_end,
                                         entry.nnz, entry.num_explicit,
                                         entry.payload_bytes, decoded_bytes,
                                         entry.file});
  }
  return info;
}

bool LooksLikeShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  if (!in.read(magic, 8)) return false;
  return std::memcmp(magic, kShardManifestMagic, 8) == 0;
}

}  // namespace dataset
}  // namespace linbp
