// Workload generators behind the built-in scenarios.
//
// Each generator plants a ground truth the coupling matrix can recover:
//   * SBM: a k-class planted partition whose in/out class edge mix matches
//     a uniform homophily or heterophily coupling;
//   * R-MAT: the power-law recursive-matrix graph of [Chakrabarti et al.,
//     SDM'04] with labels planted as BFS Voronoi cells around k random
//     centers (graph-correlated communities under homophily);
//   * bipartite fraud: reviewers x products with honest/shill/fraudster
//     roles wired like the Fig. 1c auction example — fraudsters review
//     shill products (the heterophilous A-F block), honest users review
//     legitimate products.
// The raw generators are exposed for tests; the registry factories in
// registry.cc parameterize them from scenario specs.

#ifndef LINBP_DATASET_WORKLOADS_H_
#define LINBP_DATASET_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/dataset/scenario.h"
#include "src/graph/graph.h"

namespace linbp {
namespace dataset {

/// A graph plus per-node planted classes (-1 unknown).
struct LabeledGraph {
  Graph graph;
  std::vector<int> labels;
};

/// Planted-partition stochastic block model: n nodes in k round-robin
/// classes (node v's class is v % k) and ~n * avg_degree / 2 distinct
/// edges. Each edge is intra-class with probability `intra_fraction`
/// (uniform random class, two distinct members), otherwise inter-class
/// (two distinct uniform classes). Homophily regimes use intra_fraction
/// near 1, heterophily regimes near 0. Deterministic under `seed`.
LabeledGraph SbmGraph(std::int64_t n, std::int64_t k, double avg_degree,
                      double intra_fraction, std::uint64_t seed);

/// R-MAT graph on 2^scale nodes with ~edge_factor * 2^scale distinct
/// undirected edges, recursive quadrant probabilities (a, b, c,
/// 1 - a - b - c). Labels are BFS Voronoi cells around `k` random
/// degree >= 1 centers; nodes unreachable from every center (including
/// isolated ones) stay -1. Deterministic under `seed`.
LabeledGraph RmatGraph(int scale, double edge_factor, std::int64_t k,
                       double a, double b, double c, std::uint64_t seed);

/// Bipartite review graph for the 3-class auction coupling
/// (honest = 0, accomplice/shill = 1, fraudster = 2). Nodes are laid out
/// as [honest users | fraudster users | legit products | shill products];
/// users review ~reviews_per_user products each. Honest users pick a
/// shill product with probability `camouflage`, fraudsters pick a legit
/// product with probability `camouflage`. Legit products carry class 0
/// (they interact like honest nodes), shill products class 1.
LabeledGraph FraudBipartiteGraph(std::int64_t num_users,
                                 std::int64_t num_products,
                                 double fraud_fraction, double shill_fraction,
                                 double reviews_per_user, double camouflage,
                                 std::uint64_t seed);

/// Uniform k-class heterophily residual: the negated uniform homophily
/// residual (diagonal -(k-1)*s, off-diagonal +s) — every class prefers
/// every other class equally.
DenseMatrix UniformHeterophilyResidual(std::int64_t k, double strength);

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_WORKLOADS_H_
