// The scenario registry: string specs -> runnable Scenario instances.
//
// Every workload registers a named factory; MakeScenario parses a spec
// like "sbm:n=100000,k=4,mode=heterophily", looks up the factory, hands it
// the parsed parameters, and rejects unknown scenario names, unknown
// parameter keys, and malformed values with descriptive errors. Built-in
// scenarios (registered on first use):
//
//   sbm        multi-class stochastic block model, homophily or
//              heterophily coupling regimes
//   rmat       power-law R-MAT graph with BFS-Voronoi planted labels
//   fraud      bipartite reviewer/product network with the Fig. 1c
//              auction roles (honest / shill / fraudster)
//   dblp       the synthetic DBLP heterogeneous citation network
//   kronecker  the paper's Fig. 6a Kronecker family with Sect. 7 seeding
//              (no ground truth; quality is method-vs-method agreement)
//   file       edge list + beliefs (+ optional labels) from text files
//   snap       a binary snapshot (src/dataset/snapshot.h) or a sharded
//              snapshot manifest (src/dataset/shard.h) — the file's
//              magic picks the loader
//
// New workloads drop in behind RegisterScenario without touching the CLI
// or bench drivers.

#ifndef LINBP_DATASET_REGISTRY_H_
#define LINBP_DATASET_REGISTRY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/dataset/scenario.h"
#include "src/exec/exec_context.h"

namespace linbp {
namespace dataset {

/// Builds a Scenario from parsed parameters; returns nullopt and fills
/// *error on invalid parameter combinations or I/O failures. Factories
/// must consume every parameter they accept via the ScenarioParams
/// getters (unconsumed keys are reported as unknown), validate their
/// values with error returns (a bad CLI spec must not CHECK-abort), and
/// run any parallelizable construction work on `ctx`.
using ScenarioFactory = std::function<std::optional<Scenario>(
    ScenarioParams& params, const exec::ExecContext& ctx,
    std::string* error)>;

/// Registry metadata for one scenario, shown by `--scenario list` style
/// listings.
struct ScenarioInfo {
  std::string name;
  std::string description;
  /// Comma-separated "key=default" summary of the accepted parameters.
  std::string params_help;
};

/// Registers (or replaces) a named scenario factory.
void RegisterScenario(const ScenarioInfo& info, ScenarioFactory factory);

/// All registered scenarios, sorted by name (built-ins included).
std::vector<ScenarioInfo> ListScenarios();

/// Parses `spec` and runs the matching factory on `ctx` (snapshot loads
/// parallelize deserialization there). On success the returned scenario
/// has `name` and `spec` filled in.
std::optional<Scenario> MakeScenario(const std::string& spec,
                                     std::string* error,
                                     const exec::ExecContext& ctx =
                                         exec::ExecContext::Default());

}  // namespace dataset
}  // namespace linbp

#endif  // LINBP_DATASET_REGISTRY_H_
