// Backend-generalized propagation operators.
//
// These mirror src/la/kron_ops.h with the SparseMatrix replaced by a
// PropagationBackend: BackendLinBpPropagate is one LinBP step
// A*B*Hhat [- D*B*Hhat^2], and the LinearOperator adapters let the
// iterative solvers in src/la (power iteration, Jacobi) run on any
// backend. The dense Hhat algebra and the echo update are shared with
// kron_ops, so for an InMemoryBackend every operator here is bit-for-bit
// its kron_ops counterpart.

#ifndef LINBP_ENGINE_BACKEND_OPS_H_
#define LINBP_ENGINE_BACKEND_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/propagation_backend.h"
#include "src/exec/exec_context.h"
#include "src/la/dense_matrix.h"
#include "src/la/kron_ops.h"

namespace linbp {
namespace engine {

/// One LinBP propagation step over `backend`:
///   *out = A*B*Hhat - D*B*Hhat2   if `with_echo`
///   *out = A*B*Hhat               otherwise,
/// where D = diag(weighted degrees) and `hhat2` must be Hhat^2. Returns
/// false and fills *error on a stream failure (*out unspecified).
bool BackendLinBpPropagate(const PropagationBackend& backend,
                           const DenseMatrix& hhat, const DenseMatrix& hhat2,
                           const DenseMatrix& beliefs, bool with_echo,
                           const exec::ExecContext& ctx, DenseMatrix* out,
                           std::string* error);

/// The Precision::kF32 propagation step: beliefs are stored f32, the
/// SpMM runs the f32 kernels, and the tiny dense Hhat products / echo
/// update accumulate each element in fp64 with one rounding on store.
/// `hhat`/`hhat2` stay fp64. Same failure contract.
bool BackendLinBpPropagateF32(const PropagationBackend& backend,
                              const DenseMatrix& hhat,
                              const DenseMatrix& hhat2,
                              const DenseMatrixF32& beliefs, bool with_echo,
                              const exec::ExecContext& ctx,
                              DenseMatrixF32* out, std::string* error);

/// The adjacency matrix of a backend as a LinearOperator (for power
/// iteration). Apply() throws StreamError on a backend failure.
class BackendAdjacencyOperator final : public LinearOperator {
 public:
  BackendAdjacencyOperator(const PropagationBackend* backend,
                           exec::ExecContext ctx = exec::ExecContext::Default());
  std::int64_t dim() const override;
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

 private:
  const PropagationBackend* backend_;  // not owned
  exec::ExecContext ctx_;
};

/// The implicit LinBP operator vec(B) -> vec(A*B*Hhat [- D*B*Hhat^2])
/// over a backend — LinBpOperator generalized past the resident CSR.
/// Apply() throws StreamError on a backend failure.
class BackendLinBpOperator final : public LinearOperator {
 public:
  BackendLinBpOperator(const PropagationBackend* backend, DenseMatrix hhat,
                       bool with_echo,
                       exec::ExecContext ctx = exec::ExecContext::Default());
  std::int64_t dim() const override;
  void Apply(const std::vector<double>& x,
             std::vector<double>* y) const override;

  const DenseMatrix& hhat() const { return hhat_; }
  const DenseMatrix& hhat2() const { return hhat2_; }

 private:
  const PropagationBackend* backend_;  // not owned
  DenseMatrix hhat_;
  DenseMatrix hhat2_;
  bool with_echo_;
  exec::ExecContext ctx_;
};

}  // namespace engine
}  // namespace linbp

#endif  // LINBP_ENGINE_BACKEND_OPS_H_
