// Propagation backends: where the adjacency matrix lives during a solve.
//
// Every LinBP-family algorithm reduces to products of the (fixed,
// symmetric) adjacency matrix A with skinny dense matrices or vectors,
// plus the diagonal degree echo term. The solvers in src/core therefore
// do not need a materialized Graph — only something that can compute
// A * B and A * x and hand out the weighted degrees. PropagationBackend
// is that seam: InMemoryBackend wraps the resident CSR kernels
// bit-for-bit, and ShardStreamBackend (src/engine/shard_stream_backend.h)
// computes the same products by streaming the row blocks of a sharded
// snapshot, never holding more than two blocks' CSR in memory.
//
// Contract: for the same on-disk/in-memory matrix, every backend must
// produce BIT-IDENTICAL products at every thread count. Both backends
// share the row-range kernels in src/la/sparse_matrix.h (SpmmRows /
// SpmvRows), whose per-row results do not depend on how rows are grouped
// into blocks, so this holds by construction.
//
// Failure model: in-memory products cannot fail; streamed products can
// (I/O errors, checksum mismatches on a shard read mid-sweep). The
// product methods return false and fill *error instead of aborting, so a
// corrupted shard surfaces as a recoverable error with the caller's
// state intact.

#ifndef LINBP_ENGINE_PROPAGATION_BACKEND_H_
#define LINBP_ENGINE_PROPAGATION_BACKEND_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exec/exec_context.h"
#include "src/la/dense_matrix.h"
#include "src/la/dense_matrix_f32.h"

namespace linbp {
namespace engine {

/// Abstract provider of the products one LinBP/FaBP propagation step
/// needs over the n x n symmetric adjacency matrix A.
class PropagationBackend {
 public:
  virtual ~PropagationBackend() = default;

  /// Number of nodes n (A is n x n).
  virtual std::int64_t num_nodes() const = 0;

  /// Number of stored adjacency entries (2x the undirected edge count).
  virtual std::int64_t num_stored_entries() const = 0;

  /// Weighted degrees d_s = sum of squared incident edge weights
  /// (Sect. 5.2), the diagonal of the echo term.
  virtual const std::vector<double>& weighted_degrees() const = 0;

  /// *out = A * b (SpMM; b is n x k). Resizes *out. Returns false and
  /// fills *error on a stream failure; *out is unspecified then.
  virtual bool MultiplyDense(const DenseMatrix& b,
                             const exec::ExecContext& ctx, DenseMatrix* out,
                             std::string* error) const = 0;

  /// *y = A * x (SpMV). Resizes *y. Same failure contract as
  /// MultiplyDense.
  virtual bool MultiplyVector(const std::vector<double>& x,
                              const exec::ExecContext& ctx,
                              std::vector<double>* y,
                              std::string* error) const = 0;

  /// Float32 *out = A * b: the Precision::kF32 hot path. The default
  /// implementation widens to fp64, runs MultiplyDense, and narrows the
  /// result — correct for any backend (so test doubles keep working) but
  /// without the bandwidth win; both real backends override it with true
  /// f32 kernels. Same failure contract as MultiplyDense.
  virtual bool MultiplyDenseF32(const DenseMatrixF32& b,
                                const exec::ExecContext& ctx,
                                DenseMatrixF32* out,
                                std::string* error) const {
    DenseMatrix wide;
    if (!MultiplyDense(b.ToF64(), ctx, &wide, error)) return false;
    *out = DenseMatrixF32::FromF64(wide);
    return true;
  }

  /// Float32 *y = A * x, with the same widening default as
  /// MultiplyDenseF32.
  virtual bool MultiplyVectorF32(const std::vector<float>& x,
                                 const exec::ExecContext& ctx,
                                 std::vector<float>* y,
                                 std::string* error) const {
    std::vector<double> xd(x.begin(), x.end());
    std::vector<double> yd;
    if (!MultiplyVector(xd, ctx, &yd, error)) return false;
    y->assign(yd.begin(), yd.end());
    return true;
  }
};

/// Thrown by the LinearOperator adapters in src/engine/backend_ops.h when
/// a backend product fails inside an iterative solver that has no error
/// channel of its own (power iteration, Jacobi). Callers that drive those
/// solvers over a streamed backend catch this and convert it back into an
/// error return.
class StreamError : public std::runtime_error {
 public:
  explicit StreamError(const std::string& message)
      : std::runtime_error(message) {}
};

}  // namespace engine
}  // namespace linbp

#endif  // LINBP_ENGINE_PROPAGATION_BACKEND_H_
