#include "src/engine/backend_ops.h"

#include <utility>

#include "src/util/check.h"

namespace linbp {
namespace engine {

bool BackendLinBpPropagate(const PropagationBackend& backend,
                           const DenseMatrix& hhat, const DenseMatrix& hhat2,
                           const DenseMatrix& beliefs, bool with_echo,
                           const exec::ExecContext& ctx, DenseMatrix* out,
                           std::string* error) {
  const std::int64_t n = backend.num_nodes();
  LINBP_CHECK(beliefs.rows() == n && beliefs.cols() == hhat.rows());
  // A * B, then (A*B) * Hhat — the same operation order as
  // LinBpPropagate, so results are bit-identical for equal products.
  DenseMatrix ab;
  if (!backend.MultiplyDense(beliefs, ctx, &ab, error)) return false;
  *out = ab.Multiply(hhat);
  if (!with_echo) return true;
  SubtractDegreeScaledEcho(backend.weighted_degrees(),
                           beliefs.Multiply(hhat2), ctx, out);
  return true;
}

bool BackendLinBpPropagateF32(const PropagationBackend& backend,
                              const DenseMatrix& hhat,
                              const DenseMatrix& hhat2,
                              const DenseMatrixF32& beliefs, bool with_echo,
                              const exec::ExecContext& ctx,
                              DenseMatrixF32* out, std::string* error) {
  const std::int64_t n = backend.num_nodes();
  LINBP_CHECK(beliefs.rows() == n && beliefs.cols() == hhat.rows());
  // Same operation order as the fp64 step: A * B first, then * Hhat.
  DenseMatrixF32 ab;
  if (!backend.MultiplyDenseF32(beliefs, ctx, &ab, error)) return false;
  *out = ab.MultiplyWide(hhat);
  if (!with_echo) return true;
  SubtractDegreeScaledEchoF32(backend.weighted_degrees(),
                              beliefs.MultiplyWide(hhat2), ctx, out);
  return true;
}

BackendAdjacencyOperator::BackendAdjacencyOperator(
    const PropagationBackend* backend, exec::ExecContext ctx)
    : backend_(backend), ctx_(std::move(ctx)) {
  LINBP_CHECK(backend_ != nullptr);
}

std::int64_t BackendAdjacencyOperator::dim() const {
  return backend_->num_nodes();
}

void BackendAdjacencyOperator::Apply(const std::vector<double>& x,
                                     std::vector<double>* y) const {
  std::string error;
  if (!backend_->MultiplyVector(x, ctx_, y, &error)) {
    throw StreamError(error);
  }
}

BackendLinBpOperator::BackendLinBpOperator(const PropagationBackend* backend,
                                           DenseMatrix hhat, bool with_echo,
                                           exec::ExecContext ctx)
    : backend_(backend),
      hhat_(std::move(hhat)),
      hhat2_(hhat_.Multiply(hhat_)),
      with_echo_(with_echo),
      ctx_(std::move(ctx)) {
  LINBP_CHECK(backend_ != nullptr);
  LINBP_CHECK(hhat_.rows() == hhat_.cols());
}

std::int64_t BackendLinBpOperator::dim() const {
  return backend_->num_nodes() * hhat_.rows();
}

void BackendLinBpOperator::Apply(const std::vector<double>& x,
                                 std::vector<double>* y) const {
  const std::int64_t n = backend_->num_nodes();
  const std::int64_t k = hhat_.rows();
  const DenseMatrix b = UnvectorizeBeliefs(x, n, k);
  DenseMatrix out;
  std::string error;
  if (!BackendLinBpPropagate(*backend_, hhat_, hhat2_, b, with_echo_, ctx_,
                             &out, &error)) {
    throw StreamError(error);
  }
  *y = VectorizeBeliefs(out);
}

}  // namespace engine
}  // namespace linbp
