// The out-of-core propagation backend: LinBP/FaBP sweeps over a sharded
// snapshot without ever materializing the full CSR.
//
// Each product (A*B or A*x) walks the manifest's row blocks through the
// double-buffered pipeline of src/exec/pipeline.h: while block s is
// applied — deserialized shard CSR against the full belief matrix, into
// the block's disjoint output rows, parallelized over the ExecContext
// within the block — block s+1 is read and checksum-verified on a
// prefetch thread, so I/O overlaps compute and at most TWO blocks' CSR
// bytes are resident at any instant (asserted by the reader's byte
// accounting). The row-range kernels are the same SpmmRows / SpmvRows
// the in-memory SparseMatrix kernels run, and per-row results do not
// depend on the block split, so streamed products — and therefore
// streamed LinBP/FaBP beliefs — are bit-identical to the in-memory run
// at every thread count.
//
// Open() makes one streaming pass over all shards to derive the
// O(n)-sized solver inputs (weighted degrees, explicit residual rows,
// ground truth); those are the same asymptotic size as the belief matrix
// every solver holds anyway. Only the O(nnz) CSR stays on disk.
//
// A shard that fails its checksum mid-product (e.g. corruption appearing
// between sweeps) makes the product return false with a descriptive
// error; the caller's solver state is left intact and the reader's
// residency drops back to zero.

#ifndef LINBP_ENGINE_SHARD_STREAM_BACKEND_H_
#define LINBP_ENGINE_SHARD_STREAM_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dataset/shard_stream.h"
#include "src/engine/propagation_backend.h"
#include "src/la/dense_matrix.h"

namespace linbp {
namespace engine {

/// Streams a sharded snapshot's row blocks for every product.
class ShardStreamBackend final : public PropagationBackend {
 public:
  /// Opens `manifest_path`, validates the manifest, and runs the single
  /// derivation pass (streamed, double-buffered on `ctx`). Returns
  /// nullopt and fills *error on any corruption or I/O failure.
  /// `cache_budget_bytes` > 0 keeps decoded blocks in a budgeted LRU
  /// cache across products/sweeps (see dataset::ShardBlockCache): when
  /// the working set fits, sweeps after the first re-read nothing from
  /// disk; 0 (the default) preserves the strict two-blocks-resident
  /// streaming behavior.
  static std::optional<ShardStreamBackend> Open(
      const std::string& manifest_path, std::string* error,
      const exec::ExecContext& ctx = exec::ExecContext::Default(),
      std::int64_t cache_budget_bytes = 0);

  // PropagationBackend:
  std::int64_t num_nodes() const override;
  std::int64_t num_stored_entries() const override;
  const std::vector<double>& weighted_degrees() const override;
  bool MultiplyDense(const DenseMatrix& b, const exec::ExecContext& ctx,
                     DenseMatrix* out, std::string* error) const override;
  bool MultiplyVector(const std::vector<double>& x,
                      const exec::ExecContext& ctx, std::vector<double>* y,
                      std::string* error) const override;
  /// f32 products: for f64-valued shards each streamed block's value
  /// array is narrowed to float once, right after the block loads, then
  /// the f32 row-range kernels run against it; f32-valued (v2/f32)
  /// shards feed the kernels their stored floats directly — no
  /// conversion at all, and half the stream's value bytes. Same failure
  /// contract as the fp64 pair.
  bool MultiplyDenseF32(const DenseMatrixF32& b, const exec::ExecContext& ctx,
                        DenseMatrixF32* out,
                        std::string* error) const override;
  bool MultiplyVectorF32(const std::vector<float>& x,
                         const exec::ExecContext& ctx, std::vector<float>* y,
                         std::string* error) const override;

  // Scenario-level inputs a solver pipeline needs, derived at Open()
  // without adopting a global CSR:
  std::int64_t k() const { return reader_->k(); }
  const std::string& name() const { return reader_->name(); }
  const std::string& spec() const { return reader_->spec(); }
  /// Unscaled k x k residual coupling from the manifest.
  const DenseMatrix& coupling_residual() const { return coupling_residual_; }
  /// n x k explicit residual beliefs (zero rows for unlabeled nodes).
  const DenseMatrix& explicit_residuals() const {
    return explicit_residuals_;
  }
  /// Sorted node ids with explicit beliefs.
  const std::vector<std::int64_t>& explicit_nodes() const {
    return explicit_nodes_;
  }
  /// Ground-truth class per node (-1 unknown); empty when absent.
  const std::vector<int>& ground_truth() const { return ground_truth_; }
  bool HasGroundTruth() const { return !ground_truth_.empty(); }

  /// The underlying reader (residency instrumentation, shard geometry).
  const dataset::ShardStreamReader& reader() const { return *reader_; }
  /// The decoded-block cache; nullptr when opened with budget 0.
  const dataset::ShardBlockCache* cache() const { return cache_.get(); }

 private:
  ShardStreamBackend() = default;

  // Streams every block once through the pipeline and hands it to
  // `apply` (called in shard order on the caller thread). Shared by the
  // products and the Open() derivation pass. Blocks come from the cache
  // when one is configured and hot; misses read from disk and populate
  // it.
  bool StreamBlocks(
      const exec::ExecContext& ctx,
      const std::function<void(const dataset::ShardStreamBlock&)>& apply,
      std::string* error) const;

  // shared_ptr keeps the backend movable/copyable while blocks hold the
  // accounting alive; the reader itself is immutable after Open.
  std::shared_ptr<const dataset::ShardStreamReader> reader_;
  std::shared_ptr<dataset::ShardBlockCache> cache_;
  std::vector<double> weighted_degrees_;
  DenseMatrix coupling_residual_;
  DenseMatrix explicit_residuals_;
  std::vector<std::int64_t> explicit_nodes_;
  std::vector<int> ground_truth_;
};

}  // namespace engine
}  // namespace linbp

#endif  // LINBP_ENGINE_SHARD_STREAM_BACKEND_H_
