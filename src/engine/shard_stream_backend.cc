#include "src/engine/shard_stream_backend.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/exec/pipeline.h"
#include "src/exec/row_partition.h"
#include "src/la/sparse_matrix.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {
namespace engine {

bool ShardStreamBackend::StreamBlocks(
    const exec::ExecContext& ctx,
    const std::function<void(const dataset::ShardStreamBlock&)>& apply,
    std::string* error) const {
  const dataset::ShardStreamReader& reader = *reader_;
  dataset::ShardBlockCache* cache = cache_.get();
  // Prefetch overlap needs a second runnable lane; with a serial context
  // the read happens inline (results are identical either way).
  const bool overlap = ctx.threads() > 1;
  obs::ScopedSpan span("shard_stream_pass");
  if (span.active()) {
    span.SetAttr("shards", reader.num_shards());
    span.SetAttr("overlap", static_cast<std::int64_t>(overlap ? 1 : 0));
  }
  // Items are shared_ptr so a cached block can sit in the pipeline slot
  // and in the cache at once; a hit costs a refcount bump, not a read.
  using Item = std::shared_ptr<const dataset::ShardStreamBlock>;
  return exec::RunDoubleBuffered<Item>(
      reader.num_shards(), overlap,
      [&reader, cache](std::int64_t s, Item* item, std::string* err) {
        if (cache != nullptr) {
          *item = cache->Lookup(s);
          if (*item != nullptr) return true;
        }
        auto block = std::make_shared<dataset::ShardStreamBlock>();
        if (!reader.ReadBlock(s, block.get(), err)) return false;
        if (cache != nullptr) cache->Insert(s, block);
        *item = std::move(block);
        return true;
      },
      [&apply](std::int64_t, Item* item, std::string*) {
        apply(**item);
        return true;
      },
      error);
}

std::optional<ShardStreamBackend> ShardStreamBackend::Open(
    const std::string& manifest_path, std::string* error,
    const exec::ExecContext& ctx, std::int64_t cache_budget_bytes) {
  LINBP_CHECK(error != nullptr);
  auto reader = dataset::ShardStreamReader::Open(manifest_path, error);
  if (!reader.has_value()) return std::nullopt;

  ShardStreamBackend backend;
  backend.reader_ = std::make_shared<const dataset::ShardStreamReader>(
      std::move(*reader));
  if (cache_budget_bytes > 0) {
    backend.cache_ =
        std::make_shared<dataset::ShardBlockCache>(cache_budget_bytes);
  }
  const std::int64_t n = backend.reader_->num_nodes();
  const std::int64_t k = backend.reader_->k();

  // The reader's Open already ran the shared coupling gate
  // (internal::CheckCouplingResidual), so this is a plain copy.
  backend.coupling_residual_ = DenseMatrix(k, k);
  std::copy(backend.reader_->coupling().begin(),
            backend.reader_->coupling().end(),
            backend.coupling_residual_.mutable_data().begin());

  // One streamed pass derives every O(n)-sized solver input. Blocks
  // arrive in shard order, so the explicit list stays sorted.
  backend.weighted_degrees_.assign(n, 0.0);
  backend.explicit_residuals_ = DenseMatrix(n, k);
  backend.explicit_nodes_.reserve(backend.reader_->num_explicit());
  if (backend.reader_->has_ground_truth()) {
    backend.ground_truth_.assign(n, -1);
  }
  const bool streamed = backend.StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        // Same per-row summation order as SquaredRowSums, so the echo
        // term matches the in-memory degrees bit-for-bit. f32-valued
        // shards widen per entry — exactly what an in-memory load of
        // the same shards holds, so identity is preserved there too.
        const bool f32 = !block.values_f32.empty();
        for (std::int64_t r = 0; r < block.num_rows(); ++r) {
          double degree = 0.0;
          for (std::int64_t e = block.row_ptr[r]; e < block.row_ptr[r + 1];
               ++e) {
            const double v = f32 ? static_cast<double>(block.values_f32[e])
                                 : block.values[e];
            degree += v * v;
          }
          backend.weighted_degrees_[block.row_begin + r] = degree;
        }
        for (std::size_t i = 0; i < block.explicit_nodes.size(); ++i) {
          const std::int64_t v = block.explicit_nodes[i];
          backend.explicit_nodes_.push_back(v);
          for (std::int64_t c = 0; c < k; ++c) {
            backend.explicit_residuals_.At(v, c) =
                block.explicit_rows[i * k + c];
          }
        }
        for (std::size_t r = 0; r < block.ground_truth.size(); ++r) {
          backend.ground_truth_[block.row_begin + r] =
              block.ground_truth[r];
        }
      },
      error);
  if (!streamed) return std::nullopt;
  return backend;
}

std::int64_t ShardStreamBackend::num_nodes() const {
  return reader_->num_nodes();
}

std::int64_t ShardStreamBackend::num_stored_entries() const {
  return reader_->nnz();
}

const std::vector<double>& ShardStreamBackend::weighted_degrees() const {
  return weighted_degrees_;
}

bool ShardStreamBackend::MultiplyDense(const DenseMatrix& b,
                                       const exec::ExecContext& ctx,
                                       DenseMatrix* out,
                                       std::string* error) const {
  const std::int64_t n = num_nodes();
  const std::int64_t k = b.cols();
  LINBP_CHECK(b.rows() == n);
  *out = DenseMatrix(n, k);
  const double* b_data = b.data().data();
  double* out_data = out->mutable_data().data();
  // f32-valued shards widen once per block (reused buffer), mirroring
  // the narrowing the f32 path applies to f64-valued shards.
  std::vector<double> values_f64;
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        // The block owns output rows [row_begin, row_end) exclusively;
        // within the block the ExecContext fans out over nnz-balanced
        // local row ranges. SpmmRows is per-row-owned, so the result is
        // bit-identical to the monolithic kernel at every width.
        const double* vals = block.values.data();
        if (!block.values_f32.empty()) {
          values_f64.assign(block.values_f32.begin(),
                            block.values_f32.end());
          vals = values_f64.data();
        }
        double* block_out = out_data + block.row_begin * k;
        const std::int64_t chunks =
            ctx.NumChunks(block.nnz() * k, exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmmRows(block.row_ptr.data(), block.col_idx.data(), vals, 0,
                   block.num_rows(), b_data, k, block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmmRows(block.row_ptr.data(), block.col_idx.data(), vals,
                   partition.begin(p), partition.end(p), b_data, k,
                   block_out);
        });
      },
      error);
}

bool ShardStreamBackend::MultiplyVector(const std::vector<double>& x,
                                        const exec::ExecContext& ctx,
                                        std::vector<double>* y,
                                        std::string* error) const {
  const std::int64_t n = num_nodes();
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == n);
  y->assign(n, 0.0);
  const double* x_data = x.data();
  double* y_data = y->data();
  std::vector<double> values_f64;
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        const double* vals = block.values.data();
        if (!block.values_f32.empty()) {
          values_f64.assign(block.values_f32.begin(),
                            block.values_f32.end());
          vals = values_f64.data();
        }
        double* block_out = y_data + block.row_begin;
        const std::int64_t chunks =
            ctx.NumChunks(block.nnz(), exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmvRows(block.row_ptr.data(), block.col_idx.data(), vals, 0,
                   block.num_rows(), x_data, block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmvRows(block.row_ptr.data(), block.col_idx.data(), vals,
                   partition.begin(p), partition.end(p), x_data, block_out);
        });
      },
      error);
}

bool ShardStreamBackend::MultiplyDenseF32(const DenseMatrixF32& b,
                                          const exec::ExecContext& ctx,
                                          DenseMatrixF32* out,
                                          std::string* error) const {
  const std::int64_t n = num_nodes();
  const std::int64_t k = b.cols();
  LINBP_CHECK(b.rows() == n);
  *out = DenseMatrixF32(n, k);
  const float* b_data = b.data().data();
  float* out_data = out->mutable_data().data();
  // Reused across blocks so the narrowing conversion allocates once per
  // product, not once per block. f32-valued shards skip it entirely —
  // their stored floats feed the kernels as-is.
  std::vector<float> values_f32;
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        const float* vals = block.values_f32.data();
        if (block.values_f32.empty()) {
          values_f32.assign(block.values.begin(), block.values.end());
          vals = values_f32.data();
        }
        float* block_out = out_data + block.row_begin * k;
        const std::int64_t chunks = ctx.NumChunks(
            block.nnz() * std::max<std::int64_t>(1, k / 2),
            exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmmRowsT<float>(block.row_ptr.data(), block.col_idx.data(), vals,
                           0, block.num_rows(), b_data, k, block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmmRowsT<float>(block.row_ptr.data(), block.col_idx.data(), vals,
                           partition.begin(p), partition.end(p), b_data, k,
                           block_out);
        });
      },
      error);
}

bool ShardStreamBackend::MultiplyVectorF32(const std::vector<float>& x,
                                           const exec::ExecContext& ctx,
                                           std::vector<float>* y,
                                           std::string* error) const {
  const std::int64_t n = num_nodes();
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == n);
  y->assign(n, 0.0f);
  const float* x_data = x.data();
  float* y_data = y->data();
  std::vector<float> values_f32;
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        const float* vals = block.values_f32.data();
        if (block.values_f32.empty()) {
          values_f32.assign(block.values.begin(), block.values.end());
          vals = values_f32.data();
        }
        float* block_out = y_data + block.row_begin;
        const std::int64_t chunks =
            ctx.NumChunks(block.nnz(), exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmvRowsT<float>(block.row_ptr.data(), block.col_idx.data(), vals,
                           0, block.num_rows(), x_data, block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmvRowsT<float>(block.row_ptr.data(), block.col_idx.data(), vals,
                           partition.begin(p), partition.end(p), x_data,
                           block_out);
        });
      },
      error);
}

}  // namespace engine
}  // namespace linbp
