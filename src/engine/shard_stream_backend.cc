#include "src/engine/shard_stream_backend.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/exec/pipeline.h"
#include "src/exec/row_partition.h"
#include "src/la/sparse_matrix.h"
#include "src/obs/obs.h"
#include "src/util/check.h"

namespace linbp {
namespace engine {

bool ShardStreamBackend::StreamBlocks(
    const exec::ExecContext& ctx,
    const std::function<void(const dataset::ShardStreamBlock&)>& apply,
    std::string* error) const {
  const dataset::ShardStreamReader& reader = *reader_;
  // Prefetch overlap needs a second runnable lane; with a serial context
  // the read happens inline (results are identical either way).
  const bool overlap = ctx.threads() > 1;
  obs::ScopedSpan span("shard_stream_pass");
  if (span.active()) {
    span.SetAttr("shards", reader.num_shards());
    span.SetAttr("overlap", static_cast<std::int64_t>(overlap ? 1 : 0));
  }
  return exec::RunDoubleBuffered<dataset::ShardStreamBlock>(
      reader.num_shards(), overlap,
      [&reader](std::int64_t s, dataset::ShardStreamBlock* block,
                std::string* err) { return reader.ReadBlock(s, block, err); },
      [&apply](std::int64_t, dataset::ShardStreamBlock* block,
               std::string*) {
        apply(*block);
        return true;
      },
      error);
}

std::optional<ShardStreamBackend> ShardStreamBackend::Open(
    const std::string& manifest_path, std::string* error,
    const exec::ExecContext& ctx) {
  LINBP_CHECK(error != nullptr);
  auto reader = dataset::ShardStreamReader::Open(manifest_path, error);
  if (!reader.has_value()) return std::nullopt;

  ShardStreamBackend backend;
  backend.reader_ = std::make_shared<const dataset::ShardStreamReader>(
      std::move(*reader));
  const std::int64_t n = backend.reader_->num_nodes();
  const std::int64_t k = backend.reader_->k();

  // The reader's Open already ran the shared coupling gate
  // (internal::CheckCouplingResidual), so this is a plain copy.
  backend.coupling_residual_ = DenseMatrix(k, k);
  std::copy(backend.reader_->coupling().begin(),
            backend.reader_->coupling().end(),
            backend.coupling_residual_.mutable_data().begin());

  // One streamed pass derives every O(n)-sized solver input. Blocks
  // arrive in shard order, so the explicit list stays sorted.
  backend.weighted_degrees_.assign(n, 0.0);
  backend.explicit_residuals_ = DenseMatrix(n, k);
  backend.explicit_nodes_.reserve(backend.reader_->num_explicit());
  if (backend.reader_->has_ground_truth()) {
    backend.ground_truth_.assign(n, -1);
  }
  const bool streamed = backend.StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        // Same per-row summation order as SquaredRowSums, so the echo
        // term matches the in-memory degrees bit-for-bit.
        for (std::int64_t r = 0; r < block.num_rows(); ++r) {
          double degree = 0.0;
          for (std::int64_t e = block.row_ptr[r]; e < block.row_ptr[r + 1];
               ++e) {
            degree += block.values[e] * block.values[e];
          }
          backend.weighted_degrees_[block.row_begin + r] = degree;
        }
        for (std::size_t i = 0; i < block.explicit_nodes.size(); ++i) {
          const std::int64_t v = block.explicit_nodes[i];
          backend.explicit_nodes_.push_back(v);
          for (std::int64_t c = 0; c < k; ++c) {
            backend.explicit_residuals_.At(v, c) =
                block.explicit_rows[i * k + c];
          }
        }
        for (std::size_t r = 0; r < block.ground_truth.size(); ++r) {
          backend.ground_truth_[block.row_begin + r] =
              block.ground_truth[r];
        }
      },
      error);
  if (!streamed) return std::nullopt;
  return backend;
}

std::int64_t ShardStreamBackend::num_nodes() const {
  return reader_->num_nodes();
}

std::int64_t ShardStreamBackend::num_stored_entries() const {
  return reader_->nnz();
}

const std::vector<double>& ShardStreamBackend::weighted_degrees() const {
  return weighted_degrees_;
}

bool ShardStreamBackend::MultiplyDense(const DenseMatrix& b,
                                       const exec::ExecContext& ctx,
                                       DenseMatrix* out,
                                       std::string* error) const {
  const std::int64_t n = num_nodes();
  const std::int64_t k = b.cols();
  LINBP_CHECK(b.rows() == n);
  *out = DenseMatrix(n, k);
  const double* b_data = b.data().data();
  double* out_data = out->mutable_data().data();
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        // The block owns output rows [row_begin, row_end) exclusively;
        // within the block the ExecContext fans out over nnz-balanced
        // local row ranges. SpmmRows is per-row-owned, so the result is
        // bit-identical to the monolithic kernel at every width.
        double* block_out = out_data + block.row_begin * k;
        const std::int64_t chunks =
            ctx.NumChunks(block.nnz() * k, exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmmRows(block.row_ptr.data(), block.col_idx.data(),
                   block.values.data(), 0, block.num_rows(), b_data, k,
                   block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmmRows(block.row_ptr.data(), block.col_idx.data(),
                   block.values.data(), partition.begin(p),
                   partition.end(p), b_data, k, block_out);
        });
      },
      error);
}

bool ShardStreamBackend::MultiplyVector(const std::vector<double>& x,
                                        const exec::ExecContext& ctx,
                                        std::vector<double>* y,
                                        std::string* error) const {
  const std::int64_t n = num_nodes();
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == n);
  y->assign(n, 0.0);
  const double* x_data = x.data();
  double* y_data = y->data();
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        double* block_out = y_data + block.row_begin;
        const std::int64_t chunks =
            ctx.NumChunks(block.nnz(), exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmvRows(block.row_ptr.data(), block.col_idx.data(),
                   block.values.data(), 0, block.num_rows(), x_data,
                   block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmvRows(block.row_ptr.data(), block.col_idx.data(),
                   block.values.data(), partition.begin(p),
                   partition.end(p), x_data, block_out);
        });
      },
      error);
}

bool ShardStreamBackend::MultiplyDenseF32(const DenseMatrixF32& b,
                                          const exec::ExecContext& ctx,
                                          DenseMatrixF32* out,
                                          std::string* error) const {
  const std::int64_t n = num_nodes();
  const std::int64_t k = b.cols();
  LINBP_CHECK(b.rows() == n);
  *out = DenseMatrixF32(n, k);
  const float* b_data = b.data().data();
  float* out_data = out->mutable_data().data();
  // Reused across blocks so the narrowing conversion allocates once per
  // product, not once per block.
  std::vector<float> values_f32;
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        values_f32.assign(block.values.begin(), block.values.end());
        float* block_out = out_data + block.row_begin * k;
        const std::int64_t chunks = ctx.NumChunks(
            block.nnz() * std::max<std::int64_t>(1, k / 2),
            exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmmRowsT<float>(block.row_ptr.data(), block.col_idx.data(),
                           values_f32.data(), 0, block.num_rows(), b_data, k,
                           block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmmRowsT<float>(block.row_ptr.data(), block.col_idx.data(),
                           values_f32.data(), partition.begin(p),
                           partition.end(p), b_data, k, block_out);
        });
      },
      error);
}

bool ShardStreamBackend::MultiplyVectorF32(const std::vector<float>& x,
                                           const exec::ExecContext& ctx,
                                           std::vector<float>* y,
                                           std::string* error) const {
  const std::int64_t n = num_nodes();
  LINBP_CHECK(static_cast<std::int64_t>(x.size()) == n);
  y->assign(n, 0.0f);
  const float* x_data = x.data();
  float* y_data = y->data();
  std::vector<float> values_f32;
  return StreamBlocks(
      ctx,
      [&](const dataset::ShardStreamBlock& block) {
        values_f32.assign(block.values.begin(), block.values.end());
        float* block_out = y_data + block.row_begin;
        const std::int64_t chunks =
            ctx.NumChunks(block.nnz(), exec::kDefaultMinWorkPerChunk);
        if (chunks <= 1) {
          SpmvRowsT<float>(block.row_ptr.data(), block.col_idx.data(),
                           values_f32.data(), 0, block.num_rows(), x_data,
                           block_out);
          return;
        }
        const exec::RowPartition partition =
            exec::RowPartition::NnzBalanced(block.row_ptr, chunks);
        ctx.RunBlocks(partition.num_blocks(), [&](std::int64_t p) {
          SpmvRowsT<float>(block.row_ptr.data(), block.col_idx.data(),
                           values_f32.data(), partition.begin(p),
                           partition.end(p), x_data, block_out);
        });
      },
      error);
}

}  // namespace engine
}  // namespace linbp
