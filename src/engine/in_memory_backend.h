// The resident-CSR propagation backend: a zero-cost adapter from a Graph
// to the PropagationBackend interface. Products forward to the
// SparseMatrix kernels unchanged, so a solver running on this backend is
// bit-for-bit the solver running on the Graph directly.

#ifndef LINBP_ENGINE_IN_MEMORY_BACKEND_H_
#define LINBP_ENGINE_IN_MEMORY_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/propagation_backend.h"
#include "src/graph/graph.h"

namespace linbp {
namespace engine {

/// Wraps a Graph (not owned; must outlive the backend). Never fails.
class InMemoryBackend final : public PropagationBackend {
 public:
  explicit InMemoryBackend(const Graph* graph);

  std::int64_t num_nodes() const override;
  std::int64_t num_stored_entries() const override;
  const std::vector<double>& weighted_degrees() const override;
  bool MultiplyDense(const DenseMatrix& b, const exec::ExecContext& ctx,
                     DenseMatrix* out, std::string* error) const override;
  bool MultiplyVector(const std::vector<double>& x,
                      const exec::ExecContext& ctx, std::vector<double>* y,
                      std::string* error) const override;
  bool MultiplyDenseF32(const DenseMatrixF32& b, const exec::ExecContext& ctx,
                        DenseMatrixF32* out,
                        std::string* error) const override;
  bool MultiplyVectorF32(const std::vector<float>& x,
                         const exec::ExecContext& ctx, std::vector<float>* y,
                         std::string* error) const override;

  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;  // not owned
};

}  // namespace engine
}  // namespace linbp

#endif  // LINBP_ENGINE_IN_MEMORY_BACKEND_H_
