#include "src/engine/in_memory_backend.h"

#include "src/util/check.h"

namespace linbp {
namespace engine {

InMemoryBackend::InMemoryBackend(const Graph* graph) : graph_(graph) {
  LINBP_CHECK(graph_ != nullptr);
}

std::int64_t InMemoryBackend::num_nodes() const { return graph_->num_nodes(); }

std::int64_t InMemoryBackend::num_stored_entries() const {
  return graph_->num_directed_edges();
}

const std::vector<double>& InMemoryBackend::weighted_degrees() const {
  return graph_->weighted_degrees();
}

bool InMemoryBackend::MultiplyDense(const DenseMatrix& b,
                                    const exec::ExecContext& ctx,
                                    DenseMatrix* out,
                                    std::string* error) const {
  (void)error;
  *out = graph_->adjacency().MultiplyDense(b, ctx);
  return true;
}

bool InMemoryBackend::MultiplyVector(const std::vector<double>& x,
                                     const exec::ExecContext& ctx,
                                     std::vector<double>* y,
                                     std::string* error) const {
  (void)error;
  *y = graph_->adjacency().MultiplyVector(x, ctx);
  return true;
}

bool InMemoryBackend::MultiplyDenseF32(const DenseMatrixF32& b,
                                       const exec::ExecContext& ctx,
                                       DenseMatrixF32* out,
                                       std::string* error) const {
  (void)error;
  *out = graph_->adjacency().MultiplyDenseF32(b, ctx);
  return true;
}

bool InMemoryBackend::MultiplyVectorF32(const std::vector<float>& x,
                                        const exec::ExecContext& ctx,
                                        std::vector<float>* y,
                                        std::string* error) const {
  (void)error;
  *y = graph_->adjacency().MultiplyVectorF32(x, ctx);
  return true;
}

}  // namespace engine
}  // namespace linbp
