# Resolves a GoogleTest dependency without assuming network access.
#
# Order of preference:
#   1. An installed package (Debian libgtest-dev ships static libs + headers,
#      picked up by CMake's FindGTest).
#   2. The vendored Debian source tree at /usr/src/googletest, built as a
#      subproject.
#   3. FetchContent from GitHub (online builds only).
#
# Afterwards the canonical GTest::gtest target exists.

if(TARGET GTest::gtest)
  return()
endif()

find_package(GTest QUIET)
if(GTest_FOUND AND TARGET GTest::gtest)
  message(STATUS "LinBP: using system GoogleTest")
  return()
endif()

set(LINBP_VENDORED_GTEST "/usr/src/googletest" CACHE PATH
  "Path to a GoogleTest source tree used when no installed package is found")
if(EXISTS "${LINBP_VENDORED_GTEST}/CMakeLists.txt")
  message(STATUS "LinBP: building vendored GoogleTest from ${LINBP_VENDORED_GTEST}")
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${LINBP_VENDORED_GTEST}" "${CMAKE_BINARY_DIR}/_gtest" EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  return()
endif()

message(STATUS "LinBP: fetching GoogleTest with FetchContent")
include(FetchContent)
FetchContent_Declare(googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
