# Resolves a google-benchmark dependency without assuming network access
# (mirrors the ResolveGTest.cmake offline-first pattern).
#
# Order of preference:
#   1. An installed package (Debian libbenchmark-dev ships a config file,
#      picked up by find_package in CONFIG mode).
#   2. A vendored source tree (LINBP_VENDORED_BENCHMARK), built as a
#      subproject.
#   3. FetchContent from GitHub (online builds only; disable with
#      -DLINBP_FETCH_BENCHMARK=OFF for guaranteed-offline configures).
#
# Afterwards the canonical benchmark::benchmark target exists — or, when
# every source failed, it does not and callers skip their targets.

if(TARGET benchmark::benchmark)
  return()
endif()

find_package(benchmark QUIET)
if(benchmark_FOUND AND TARGET benchmark::benchmark)
  message(STATUS "LinBP: using system google-benchmark")
  return()
endif()

set(LINBP_VENDORED_BENCHMARK "/usr/src/benchmark" CACHE PATH
  "Path to a google-benchmark source tree used when no installed package is found")
if(EXISTS "${LINBP_VENDORED_BENCHMARK}/CMakeLists.txt")
  message(STATUS "LinBP: building vendored google-benchmark from ${LINBP_VENDORED_BENCHMARK}")
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  add_subdirectory("${LINBP_VENDORED_BENCHMARK}" "${CMAKE_BINARY_DIR}/_benchmark" EXCLUDE_FROM_ALL)
  return()
endif()

option(LINBP_FETCH_BENCHMARK
  "Allow fetching google-benchmark from the network as a last resort" ON)
if(LINBP_FETCH_BENCHMARK)
  message(STATUS "LinBP: fetching google-benchmark with FetchContent")
  include(FetchContent)
  FetchContent_Declare(googlebenchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.zip)
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googlebenchmark)
else()
  message(STATUS "LinBP: google-benchmark unavailable and fetching disabled")
endif()
