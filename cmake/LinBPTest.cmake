# linbp_add_test(<name> SOURCES <file...> [DEPS <target...>])
#
# Builds one gtest binary per test source, links it against the shared
# test main (linbp_gtest_main) plus the requested library targets, and
# registers it with CTest under its target name.
function(linbp_add_test name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "linbp_add_test(${name}): SOURCES is required")
  endif()
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE linbp_gtest_main ${ARG_DEPS})
  add_test(NAME ${name} COMMAND ${name})
  set_tests_properties(${name} PROPERTIES TIMEOUT 300)
endfunction()
